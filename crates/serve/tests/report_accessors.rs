//! Unit tests of the uniform report accessors: `ServeReport`'s
//! fleet-style aggregates (`offered`/`admitted`/`shed`, merged
//! histogram quantiles) and the fleet's per-chain shed attribution
//! (`ChainReport::shed` sums to `FleetReport::shed()`, and
//! `FleetReport::offered()` mirrors the tenant side).

use respect_graph::models;
use respect_sched::balanced::OpBalanced;
use respect_sched::Scheduler;
use respect_serve::{
    serve, serve_fleet, AdmissionPolicy, AutoscalePolicy, BatchPolicy, DriftPolicy, FleetConfig,
    Repartitioner, RouterPolicy, ServeConfig, ServeTenant,
};
use respect_tpu::sim::Arrivals;
use respect_tpu::{compile, CompiledPipeline, DeviceSpec};

fn pipeline() -> CompiledPipeline {
    let dag = models::resnet50();
    let schedule = OpBalanced::new().schedule(&dag, 4).unwrap();
    compile::compile(&dag, &schedule, &DeviceSpec::coral()).unwrap()
}

/// A two-tenant serving mix with one overloaded, queue-bounded tenant,
/// so both `admitted` and `shed` are nonzero.
fn mixed_tenants(p: &CompiledPipeline) -> Vec<ServeTenant> {
    vec![
        ServeTenant::new(p.clone(), 300)
            .with_arrivals(Arrivals::Poisson {
                rate: 2_000.0,
                seed: 5,
            })
            .with_admission(AdmissionPolicy::QueueBound { max_waiting: 4 }),
        ServeTenant::new(p.clone(), 200),
    ]
}

#[test]
fn serve_report_aggregates_sum_over_tenants() {
    let p = pipeline();
    let r = serve(
        &mixed_tenants(&p),
        &DeviceSpec::coral(),
        &ServeConfig::uncontended(),
    )
    .unwrap();
    assert_eq!(r.offered(), 500);
    assert_eq!(
        r.offered(),
        r.tenants.iter().map(|t| t.offered).sum::<usize>()
    );
    assert_eq!(
        r.admitted(),
        r.tenants.iter().map(|t| t.admitted).sum::<usize>()
    );
    assert_eq!(r.shed(), r.tenants.iter().map(|t| t.shed).sum::<usize>());
    assert!(r.shed() > 0, "the queue-bounded flood must shed");
    assert_eq!(r.admitted() + r.shed(), r.offered());
}

#[test]
fn serve_report_quantiles_come_from_the_merged_histogram() {
    let p = pipeline();
    let r = serve(
        &mixed_tenants(&p),
        &DeviceSpec::coral(),
        &ServeConfig::uncontended(),
    )
    .unwrap();
    let merged = r.histogram();
    assert_eq!(
        merged.count(),
        r.tenants.iter().map(|t| t.histogram.count()).sum::<u64>(),
        "merged histogram must hold every tenant's samples"
    );
    assert_eq!(r.p50_s().to_bits(), merged.quantile(0.50).to_bits());
    assert_eq!(r.p95_s().to_bits(), merged.quantile(0.95).to_bits());
    assert_eq!(r.p99_s().to_bits(), merged.quantile(0.99).to_bits());
    assert_eq!(r.p999_s().to_bits(), merged.quantile(0.999).to_bits());
    assert!(r.p50_s() <= r.p99_s());
}

#[test]
fn chain_shed_attribution_sums_to_the_fleet_total() {
    let p = pipeline();
    let cfg =
        FleetConfig::homogeneous(3, DeviceSpec::coral()).with_router(RouterPolicy::RoundRobin);
    let r = serve_fleet(&mixed_tenants(&p), &cfg).unwrap();
    assert!(r.shed() > 0, "the queue-bounded flood must shed");
    assert_eq!(
        r.chains.iter().map(|c| c.shed).sum::<usize>(),
        r.shed(),
        "admission is chain-local: per-chain sheds must sum to the fleet total"
    );
    // admitted + shed covers everything routed to each chain
    for (i, c) in r.chains.iter().enumerate() {
        assert!(
            c.admitted + c.shed > 0,
            "round-robin must route work to chain {i}"
        );
    }
    assert_eq!(r.offered(), 500);
    assert_eq!(
        r.offered(),
        r.tenants.iter().map(|t| t.offered).sum::<usize>()
    );
    assert_eq!(r.admitted() + r.shed(), r.offered());
}

#[test]
fn fleet_swap_log_accessors_mirror_the_per_chain_reports() {
    // A deliberately poor partition (op-count balancing on DenseNet)
    // with a per-chain repartitioner: swaps must fire, and the
    // accessor surface must agree with the underlying logs.
    let dag = models::densenet121();
    let spec = DeviceSpec::coral();
    let schedule = OpBalanced::new().schedule(&dag, 6).unwrap();
    let poor = compile::compile(&dag, &schedule, &spec).unwrap();
    let tenant = ServeTenant::new(poor, 1_200)
        .with_warmup(100)
        .with_batcher(BatchPolicy::new(8, 5e-3))
        .with_repartitioner(
            Repartitioner::new(dag.clone(), spec.cost_model()).with_policy(
                DriftPolicy::new()
                    .with_window_jobs(24)
                    .with_threshold(0.08)
                    .with_max_swaps(3),
            ),
        );
    let cfg = FleetConfig::homogeneous(2, spec);
    let r = serve_fleet(&[tenant], &cfg).unwrap();
    assert_eq!(r.chain_swap_counts().len(), r.chains.len());
    assert_eq!(
        r.chain_swap_counts(),
        r.chains.iter().map(|c| c.swaps).collect::<Vec<_>>()
    );
    assert_eq!(r.chain_swap_counts().iter().sum::<usize>(), r.total_swaps());
    assert_eq!(
        r.total_swaps(),
        r.tenants.iter().map(|t| t.swaps.len()).sum::<usize>(),
        "every accepted swap is charged to exactly one chain and one tenant"
    );
    assert!(
        r.total_swaps() > 0,
        "the poor deployment must trigger swaps"
    );
    assert!(
        r.scale_event_log().is_empty(),
        "no autoscaler means no scale events"
    );
    assert_eq!(r.scale_up_count(), 0);
    assert_eq!(r.scale_down_count(), 0);
}

#[test]
fn fleet_scale_log_accessors_mirror_the_event_log() {
    // Flood a 3-chain autoscaled fleet so the active prefix must grow.
    let p = pipeline();
    let flood = ServeTenant::new(p, 600)
        .with_arrivals(Arrivals::Poisson {
            rate: 2_000.0,
            seed: 11,
        })
        .with_batcher(BatchPolicy::new(8, 2e-3));
    let cfg = FleetConfig::homogeneous(3, DeviceSpec::coral()).with_autoscale(
        AutoscalePolicy::new()
            .with_check_jobs(2)
            .with_scale_up_s(0.005)
            .with_scale_down_s(0.001),
    );
    let r = serve_fleet(&[flood], &cfg).unwrap();
    assert_eq!(r.scale_event_log(), r.scale_events.as_slice());
    assert_eq!(
        r.scale_up_count() + r.scale_down_count(),
        r.scale_event_log().len(),
        "every scale event either grows or shrinks the prefix"
    );
    assert!(r.scale_up_count() >= 1, "the flood must scale the fleet up");
    // the log is a contiguous chain: each step starts where the last
    // ended, beginning at the min_chains floor
    let mut active = 1usize;
    for e in r.scale_event_log() {
        assert_eq!(e.from, active, "scale events must chain contiguously");
        active = e.to;
    }
}

#[test]
fn unshedding_fleet_reports_zero_chain_shed() {
    let p = pipeline();
    let tenants = [ServeTenant::new(p, 120)];
    let cfg = FleetConfig::homogeneous(2, DeviceSpec::coral());
    let r = serve_fleet(&tenants, &cfg).unwrap();
    assert_eq!(r.shed(), 0);
    for c in &r.chains {
        assert_eq!(c.shed, 0);
    }
    assert_eq!(r.offered(), 120);
    assert_eq!(r.admitted(), 120);
}
