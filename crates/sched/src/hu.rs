//! Hu's algorithm — the classic level-based scheduler the paper cites as
//! representative of the heuristic RCS family (Sec. II).
//!
//! Solves a sibling problem to pipeline partitioning: unit-latency tasks
//! on `m` identical processors under precedence. Nodes are prioritized by
//! their *level* (longest path to a sink); each time step runs the `m`
//! highest-level ready nodes. Optimal for in-forests (Hu, 1961), a strong
//! heuristic otherwise. Included as a substrate so the repository covers
//! the full background the paper builds on.

use respect_graph::{topo, Dag, NodeId};

use crate::cost::CostModel;
use crate::pack;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// [`Scheduler`] adapter projecting Hu's algorithm onto pipeline
/// partitioning, for the registry and any other `dyn Scheduler` context.
///
/// Hu's algorithm solves a sibling problem (unit-time tasks on identical
/// processors), so the adapter is a list-scheduling projection: the
/// level-priority execution order of [`hu_schedule`] with
/// `machines = num_stages` — concatenating the time slots yields a
/// topological order — is cut into `num_stages` contiguous segments by
/// the optimal packing DP ([`pack::pack`]) under the cost model.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct HuList {
    model: CostModel,
}

impl HuList {
    /// Creates the adapter.
    pub fn new(model: CostModel) -> Self {
        HuList { model }
    }
}

impl Default for HuList {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Scheduler for HuList {
    fn name(&self) -> &str {
        "Hu list"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let order: Vec<NodeId> = hu_schedule(dag, num_stages).into_iter().flatten().collect();
        Ok(pack::pack(dag, &order, num_stages, &self.model).0)
    }
}

/// Schedules unit-time tasks on `machines` processors; returns the nodes
/// executed at each time step (each step runs at most `machines` nodes).
///
/// # Panics
///
/// Panics if `machines == 0`.
pub fn hu_schedule(dag: &Dag, machines: usize) -> Vec<Vec<NodeId>> {
    assert!(machines > 0, "at least one machine");
    let levels = topo::height_to_sink(dag);
    let n = dag.len();
    let mut indeg: Vec<usize> = dag.node_ids().map(|v| dag.in_degree(v)).collect();
    let mut ready: Vec<NodeId> = dag.node_ids().filter(|v| indeg[v.index()] == 0).collect();
    let mut slots = Vec::new();
    let mut done = 0usize;
    while done < n {
        // highest level first; id as deterministic tie-break
        ready.sort_by_key(|&v| (std::cmp::Reverse(levels[v.index()]), v));
        let take = machines.min(ready.len());
        let step: Vec<NodeId> = ready.drain(..take).collect();
        for &v in &step {
            for &s in dag.succs(v) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        done += step.len();
        slots.push(step);
    }
    slots
}

/// Makespan (number of time steps) of [`hu_schedule`].
pub fn hu_makespan(dag: &Dag, machines: usize) -> usize {
    hu_schedule(dag, machines).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, OpKind, OpNode};

    fn dag_from_edges(n: usize, edges: &[(u32, u32)]) -> Dag {
        let mut b = DagBuilder::new();
        for i in 0..n {
            b.add_node(OpNode::new(format!("n{i}"), OpKind::Other));
        }
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_takes_length_steps_regardless_of_machines() {
        let dag = dag_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(hu_makespan(&dag, 1), 5);
        assert_eq!(hu_makespan(&dag, 4), 5);
    }

    #[test]
    fn independent_tasks_pack_into_ceil_div() {
        let dag = dag_from_edges(7, &[]);
        assert_eq!(hu_makespan(&dag, 3), 3); // ceil(7/3)
        assert_eq!(hu_makespan(&dag, 7), 1);
    }

    #[test]
    fn intree_is_scheduled_optimally() {
        // Classic in-tree: 4 leaves -> 2 mids -> 1 root, 2 machines.
        // Optimal: t0 {l0,l1} t1 {l2,l3} t2 {m0,m1} t3 {root} = 4 steps.
        let dag = dag_from_edges(7, &[(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)]);
        assert_eq!(hu_makespan(&dag, 2), 4);
    }

    #[test]
    fn schedule_respects_precedence_and_capacity() {
        let dag = dag_from_edges(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]);
        let m = 2;
        let slots = hu_schedule(&dag, m);
        let mut time = [0usize; 6];
        for (t, slot) in slots.iter().enumerate() {
            assert!(slot.len() <= m, "capacity at step {t}");
            for &v in slot {
                time[v.index()] = t;
            }
        }
        for (u, v) in dag.edges() {
            assert!(time[u.index()] < time[v.index()], "{u} before {v}");
        }
        // every node scheduled exactly once
        let total: usize = slots.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn makespan_never_below_critical_path_or_work_bound() {
        let dag = dag_from_edges(8, &[(0, 1), (1, 2), (0, 3), (3, 4), (0, 5)]);
        for m in 1..=4 {
            let ms = hu_makespan(&dag, m);
            let cp = dag.depth() + 1;
            let work = dag.len().div_ceil(m);
            assert!(ms >= cp.max(work), "m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let dag = dag_from_edges(1, &[]);
        let _ = hu_schedule(&dag, 0);
    }

    #[test]
    fn adapter_produces_valid_schedules() {
        let dag = dag_from_edges(7, &[(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)]);
        let sched = HuList::new(CostModel::coral());
        for k in [1, 2, 3] {
            let s = sched.schedule(&dag, k).unwrap();
            assert!(s.is_valid(&dag), "k={k}");
            assert_eq!(s.num_stages(), k);
        }
        assert_eq!(sched.name(), "Hu list");
    }

    #[test]
    fn adapter_rejects_zero_stages() {
        let dag = dag_from_edges(2, &[(0, 1)]);
        assert!(matches!(
            HuList::new(CostModel::coral()).schedule(&dag, 0),
            Err(ScheduleError::NoStages)
        ));
    }

    #[test]
    fn adapter_order_is_the_hu_execution_order() {
        let dag = dag_from_edges(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]);
        let order: Vec<NodeId> = hu_schedule(&dag, 3).into_iter().flatten().collect();
        assert!(topo::is_topological_order(&dag, &order));
        assert_eq!(order.len(), dag.len());
    }
}
