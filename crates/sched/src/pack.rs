//! The paper's `ρ`: mapping a node sequence onto pipeline stages.
//!
//! Equation (2) of the paper writes `S' = ρ(π(i), s_k)`: a deterministic
//! procedure that turns the sequence emitted by the RL agent (or by the
//! exact method's `γ`) into a stage assignment for the specific Edge TPU
//! system. We realize `ρ` as the *optimal* contiguous packing of the
//! fixed sequence into `num_stages` segments under the
//! [`CostModel`] bottleneck objective — an
//! `O(num_stages · |V| · (|V| + |E|))` dynamic program. For a fixed
//! sequence this is exact; the hard combinatorial choice (which sequence)
//! is what the exact solver searches and the RL agent predicts.

use respect_graph::{Dag, NodeId};

use crate::cost::{CostModel, SegmentAccumulator};
use crate::order;
use crate::schedule::Schedule;

/// Optimally packs `order` into `num_stages` contiguous segments,
/// minimizing the bottleneck stage cost. Returns the schedule and its
/// objective value.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the graph's nodes or
/// `num_stages == 0`.
pub fn pack(dag: &Dag, order: &[NodeId], num_stages: usize, model: &CostModel) -> (Schedule, f64) {
    assert!(num_stages > 0, "at least one stage");
    let n = order.len();
    let pos = order::positions(dag, order);
    let k_max = num_stages;

    const INF: f64 = f64::INFINITY;
    // f[k][i]: min bottleneck scheduling order[0..i] into k stages.
    let mut f = vec![vec![INF; n + 1]; k_max + 1];
    let mut choice = vec![vec![usize::MAX; n + 1]; k_max + 1];
    f[0][0] = 0.0;
    for k in 1..=k_max {
        for j in 0..=n {
            let base = f[k - 1][j];
            if !base.is_finite() {
                continue;
            }
            // empty segment: stage k holds nothing
            if base < f[k][j] {
                f[k][j] = base;
                choice[k][j] = j;
            }
            let mut acc = SegmentAccumulator::new();
            for i in j + 1..=n {
                let v = order[i - 1];
                acc.push(dag, v, |p| pos[p.index()] < j);
                let cost = acc.cost(model);
                let cand = base.max(cost);
                if cand < f[k][i] {
                    f[k][i] = cand;
                    choice[k][i] = j;
                }
            }
        }
    }

    // Reconstruct cut positions.
    let mut cuts = vec![0usize; k_max - 1];
    let mut i = n;
    for k in (1..=k_max).rev() {
        let j = choice[k][i];
        debug_assert_ne!(j, usize::MAX, "DP must reach every suffix");
        if k >= 2 {
            cuts[k - 2] = j;
        }
        i = j;
    }
    let schedule = Schedule::from_cuts(order, &cuts, num_stages);
    (schedule, f[k_max][n])
}

/// Convenience: `pack` on the deterministic default order.
pub fn pack_default(dag: &Dag, num_stages: usize, model: &CostModel) -> (Schedule, f64) {
    let order = order::default_order(dag);
    pack(dag, &order, num_stages, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use respect_graph::{models, DagBuilder, OpKind, OpNode, SyntheticConfig, SyntheticSampler};

    fn chain_with_params(params: &[u64]) -> Dag {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = params
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                b.add_node(
                    OpNode::new(format!("n{i}"), OpKind::Conv2d)
                        .with_params(p)
                        .with_output(1),
                )
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    /// Cache 0 so every parameter byte costs; comm negligible.
    fn mem_only_model() -> CostModel {
        CostModel {
            sec_per_mac: 0.0,
            sec_per_byte: 1.0,
            cache_bytes: 0,
        }
    }

    #[test]
    fn packs_balanced_chain_optimally() {
        // 1,1,1,1 into 2 stages: bottleneck 2 (2+2 split)
        let dag = chain_with_params(&[1, 1, 1, 1]);
        let order: Vec<_> = dag.node_ids().collect();
        let (s, obj) = pack(&dag, &order, 2, &mem_only_model());
        assert!(s.is_valid(&dag));
        // +1 byte of cut traffic for the edge crossing the cut
        assert!((obj - 3.0).abs() < 1e-12, "obj={obj}");
        assert_eq!(s.stage_of(), &[0, 0, 1, 1]);
    }

    #[test]
    fn pack_beats_naive_split_on_skewed_chain() {
        // 10,1,1,1: naive halves give max(11, 2); optimal = 10 + cut
        let dag = chain_with_params(&[10, 1, 1, 1]);
        let order: Vec<_> = dag.node_ids().collect();
        let (s, obj) = pack(&dag, &order, 2, &mem_only_model());
        assert_eq!(s.stage_of(), &[0, 1, 1, 1]);
        assert!((obj - 10.0).abs() < 1e-12);
    }

    #[test]
    fn objective_matches_cost_model_recomputation() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(3), 17);
        let model = CostModel::coral();
        for _ in 0..10 {
            let dag = sampler.sample();
            let order = order::default_order(&dag);
            for k in 1..=4 {
                let (s, obj) = pack(&dag, &order, k, &model);
                assert!(s.is_valid(&dag));
                let recomputed = model.objective(&dag, &s);
                assert!(
                    (obj - recomputed).abs() <= 1e-9 * obj.max(1e-30),
                    "k={k}: dp {obj} vs recompute {recomputed}"
                );
            }
        }
    }

    #[test]
    fn pack_is_optimal_for_fixed_order_by_enumeration() {
        // exhaustively check all cut placements on small chains
        let dag = chain_with_params(&[5, 3, 8, 2, 7, 1]);
        let order: Vec<_> = dag.node_ids().collect();
        let model = mem_only_model();
        let (_, obj) = pack(&dag, &order, 3, &model);
        let n = order.len();
        let mut best = f64::INFINITY;
        for c1 in 0..=n {
            for c2 in c1..=n {
                let s = Schedule::from_cuts(&order, &[c1, c2], 3);
                best = best.min(model.objective(&dag, &s));
            }
        }
        assert!((obj - best).abs() < 1e-12, "dp {obj} vs brute {best}");
    }

    #[test]
    fn more_stages_never_hurt() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(2), 23);
        let dag = sampler.sample();
        let model = CostModel::coral();
        let order = order::default_order(&dag);
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let (_, obj) = pack(&dag, &order, k, &model);
            assert!(obj <= prev + 1e-12, "k={k}: {obj} > {prev}");
            prev = obj;
        }
    }

    #[test]
    fn single_stage_cost_is_whole_graph() {
        let dag = chain_with_params(&[4, 4]);
        let order: Vec<_> = dag.node_ids().collect();
        let (s, obj) = pack(&dag, &order, 1, &mem_only_model());
        assert_eq!(s.num_stages(), 1);
        assert!((obj - 8.0).abs() < 1e-12);
    }

    #[test]
    fn handles_more_stages_than_nodes() {
        let dag = chain_with_params(&[2, 2]);
        let order: Vec<_> = dag.node_ids().collect();
        let (s, _) = pack(&dag, &order, 5, &mem_only_model());
        assert!(s.is_valid(&dag));
        assert_eq!(s.num_stages(), 5);
    }

    #[test]
    fn pack_default_works_on_real_models() {
        let dag = models::xception();
        let model = CostModel::coral();
        let (s, obj) = pack_default(&dag, 4, &model);
        assert!(s.is_valid(&dag));
        assert!(obj > 0.0);
        assert!(obj >= model.lower_bound(&dag, 4) - 1e-15);
    }

    #[test]
    fn better_orders_can_beat_default() {
        // randomized orders should never beat pack on *their own* order's
        // optimum being worse than picking the best of many.
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(4), 31);
        let dag = sampler.sample();
        let model = CostModel::coral();
        let (_, base) = pack_default(&dag, 4, &model);
        let mut rng = StdRng::seed_from_u64(7);
        let best_random = (0..50)
            .map(|_| {
                let o = order::random_topo_order(&dag, &mut rng);
                pack(&dag, &o, 4, &model).1
            })
            .fold(f64::INFINITY, f64::min);
        // sanity: the search space matters — orders differ in quality
        assert!(best_random.is_finite() && base.is_finite());
    }
}
