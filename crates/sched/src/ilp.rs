//! Generic ILP-style branch-and-bound — the paper's exact baseline.
//!
//! The paper solves the scheduling ILP with IBM CPLEX (Sec. IV): binary
//! variables `x[v][k]` assign node `v` to stage `k`, precedence forces
//! `stage(u) ≤ stage(v)` along edges, and the objective minimizes the
//! bottleneck stage cost. This module reproduces that *solver behaviour*:
//! a depth-first branch-and-bound over the assignment tree in topological
//! order, with greedy dives for incumbents and bottleneck-bound pruning —
//! but **without** the order-ideal memoization that makes
//! [`crate::exact`] polynomial on narrow graphs. Like any practical ILP
//! run it takes a time limit; within the limit the result is provably
//! optimal, otherwise the incumbent is returned (anytime behaviour).
//!
//! Use [`crate::exact::ExactScheduler`] when you want the optimum fast;
//! use this solver when you want the *solving-time profile* of the
//! paper's CPLEX baseline (Fig. 3).

use std::time::{Duration, Instant};

use respect_graph::{Dag, NodeId};

use crate::cost::CostModel;
use crate::order;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// Result of an ILP-style solve.
#[derive(Debug, Clone)]
pub struct IlpSolution {
    /// Best schedule found.
    pub schedule: Schedule,
    /// Its bottleneck objective.
    pub objective: f64,
    /// Whether the search tree was exhausted (proof of optimality).
    pub proven_optimal: bool,
    /// Branch-and-bound nodes visited.
    pub nodes_explored: u64,
}

/// Generic branch-and-bound scheduler (CPLEX stand-in).
#[derive(Debug, Clone)]
#[must_use]
pub struct IlpScheduler {
    model: CostModel,
    /// Wall-clock limit, as passed to any practical ILP solver.
    pub time_budget: Option<Duration>,
}

impl IlpScheduler {
    /// Creates a solver with no time limit.
    pub fn new(model: CostModel) -> Self {
        IlpScheduler {
            model,
            time_budget: None,
        }
    }

    /// Sets the time limit.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }
}

impl Default for IlpScheduler {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl IlpScheduler {
    /// Runs the branch-and-bound.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoStages`] for `num_stages == 0`.
    pub fn solve(&self, dag: &Dag, num_stages: usize) -> Result<IlpSolution, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let n = dag.len();
        let sequence = order::default_order(dag);
        let start = Instant::now();

        struct Ctx<'a> {
            dag: &'a Dag,
            model: &'a CostModel,
            sequence: &'a [NodeId],
            num_stages: usize,
            stage_of: Vec<usize>,
            params: Vec<u64>,
            macs: Vec<u64>,
            comm_in: Vec<u64>,
            incumbent: f64,
            best: Vec<usize>,
            has_best: bool,
            nodes: u64,
            deadline: Option<Instant>,
            timed_out: bool,
        }

        impl Ctx<'_> {
            fn stage_cost(&self, k: usize) -> f64 {
                self.model
                    .stage_cost(self.params[k], self.macs[k], self.comm_in[k])
            }

            fn dfs(&mut self, idx: usize, bottleneck: f64) {
                self.nodes += 1;
                if self.nodes.is_multiple_of(4096) {
                    if let Some(deadline) = self.deadline {
                        if Instant::now() > deadline {
                            self.timed_out = true;
                        }
                    }
                }
                if self.timed_out {
                    return;
                }
                if idx == self.sequence.len() {
                    if bottleneck < self.incumbent {
                        self.incumbent = bottleneck;
                        self.best.copy_from_slice(&self.stage_of);
                        self.has_best = true;
                    }
                    return;
                }
                let v = self.sequence[idx];
                let k_min = self
                    .dag
                    .preds(v)
                    .iter()
                    .map(|&p| self.stage_of[p.index()])
                    .max()
                    .unwrap_or(0);
                // evaluate all stage choices, branch best-first (greedy
                // dives produce strong incumbents early, like MIP solvers)
                let node = self.dag.node(v);
                let mut choices: Vec<(f64, usize, u64)> = Vec::new();
                for k in k_min..self.num_stages {
                    let mut comm_add = 0u64;
                    for &p in self.dag.preds(v) {
                        if self.stage_of[p.index()] != k {
                            comm_add += self.dag.node(p).output_bytes;
                        }
                    }
                    let cost = self.model.stage_cost(
                        self.params[k] + node.param_bytes,
                        self.macs[k] + node.macs,
                        self.comm_in[k] + comm_add,
                    );
                    let nb = bottleneck.max(cost);
                    if nb < self.incumbent {
                        choices.push((nb, k, comm_add));
                    }
                }
                choices.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
                for (nb, k, comm_add) in choices {
                    if nb >= self.incumbent || self.timed_out {
                        continue; // incumbent may have tightened
                    }
                    self.stage_of[v.index()] = k;
                    self.params[k] += node.param_bytes;
                    self.macs[k] += node.macs;
                    self.comm_in[k] += comm_add;
                    let _ = self.stage_cost(k);
                    self.dfs(idx + 1, nb);
                    self.params[k] -= node.param_bytes;
                    self.macs[k] -= node.macs;
                    self.comm_in[k] -= comm_add;
                }
                self.stage_of[v.index()] = 0;
            }
        }

        let mut ctx = Ctx {
            dag,
            model: &self.model,
            sequence: &sequence,
            num_stages,
            stage_of: vec![0; n],
            params: vec![0; num_stages],
            macs: vec![0; num_stages],
            comm_in: vec![0; num_stages],
            incumbent: f64::INFINITY,
            best: vec![0; n],
            has_best: false,
            nodes: 0,
            deadline: self.time_budget.map(|b| start + b),
            timed_out: false,
        };
        ctx.dfs(0, 0.0);

        let stage_of = if ctx.has_best {
            ctx.best
        } else {
            // budget expired before the first dive completed (enormous
            // graphs): fall back to everything-on-one-stage feasibility
            vec![0; n]
        };
        let schedule = Schedule::new(stage_of, num_stages)?;
        debug_assert!(schedule.is_valid(dag));
        Ok(IlpSolution {
            objective: self.model.objective(dag, &schedule),
            schedule,
            proven_optimal: !ctx.timed_out,
            nodes_explored: ctx.nodes,
        })
    }
}

impl Scheduler for IlpScheduler {
    fn name(&self) -> &str {
        "exact (ILP)"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        Ok(self.solve(dag, num_stages)?.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::exact::ExactScheduler;
    use respect_graph::{SyntheticConfig, SyntheticSampler};

    fn tiny_model() -> CostModel {
        CostModel {
            sec_per_mac: 1e-3,
            sec_per_byte: 1.0,
            cache_bytes: 4,
        }
    }

    fn small_dag(seed: u64, nodes: usize) -> respect_graph::Dag {
        let cfg = SyntheticConfig {
            num_nodes: nodes,
            max_in_degree: 3,
            param_bytes_range: (1, 64),
            output_bytes_range: (1, 16),
            ..SyntheticConfig::default()
        };
        SyntheticSampler::new(cfg, seed).sample()
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let model = tiny_model();
        let solver = IlpScheduler::new(model);
        for seed in 0..5 {
            let dag = small_dag(seed, 8);
            for k in [2, 3] {
                let sol = solver.solve(&dag, k).unwrap();
                assert!(sol.proven_optimal);
                let expected = brute::optimal_objective(&dag, k, &model);
                assert!(
                    (sol.objective - expected).abs() <= 1e-9 * expected.max(1e-12),
                    "seed {seed} k={k}: {} vs {expected}",
                    sol.objective
                );
            }
        }
    }

    #[test]
    fn agrees_with_structured_exact_solver() {
        let model = CostModel::coral();
        let ilp = IlpScheduler::new(model);
        let exact = ExactScheduler::new(model).with_warmstart_moves(100);
        let dag = small_dag(11, 14);
        for k in [2, 3] {
            let a = ilp.solve(&dag, k).unwrap();
            let b = exact.solve(&dag, k).unwrap();
            assert!(a.proven_optimal && b.proven_optimal);
            assert!(
                (a.objective - b.objective).abs() <= 1e-9 * a.objective.max(1e-12),
                "k={k}: ilp {} vs exact {}",
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn paper_scale_graph_solves_or_times_out_gracefully() {
        let model = CostModel::coral();
        let dag = SyntheticSampler::new(SyntheticConfig::paper(3), 5).sample();
        let ilp = IlpScheduler::new(model)
            .with_time_budget(Duration::from_secs(5))
            .solve(&dag, 4)
            .unwrap();
        assert!(ilp.schedule.is_valid(&dag));
        if ilp.proven_optimal {
            // when it proves, it must agree with the structured solver
            let exact = ExactScheduler::new(model).solve(&dag, 4).unwrap();
            assert!(
                (ilp.objective - exact.objective).abs() <= 1e-9 * exact.objective.max(1e-12),
                "ilp {} vs exact {}",
                ilp.objective,
                exact.objective
            );
        }
        assert!(ilp.nodes_explored > 0);
    }

    #[test]
    fn budget_yields_anytime_incumbent() {
        let model = CostModel::coral();
        let dag = small_dag(7, 60);
        let sol = IlpScheduler::new(model)
            .with_time_budget(Duration::from_millis(50))
            .solve(&dag, 4)
            .unwrap();
        assert!(sol.schedule.is_valid(&dag));
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn zero_stages_is_an_error() {
        let dag = small_dag(1, 4);
        assert!(matches!(
            IlpScheduler::new(tiny_model()).solve(&dag, 0),
            Err(ScheduleError::NoStages)
        ));
    }
}
