//! Exact pipeline scheduling — the stand-in for the paper's CPLEX ILP.
//!
//! Any valid pipeline schedule is a chain of order ideals (down-closed
//! node sets) `∅ = D_0 ⊆ D_1 ⊆ … ⊆ D_K = V`: stage `k` executes
//! `D_{k+1} \ D_k`, and `stage(u) ≤ stage(v)` holds for every edge exactly
//! when each `D` is down-closed. The solver runs a stage-by-stage dynamic
//! program over boundary ideals with branch-and-bound pruning:
//!
//! * segments are grown node-by-node in a canonical order (increasing
//!   position in a fixed topological order), so every ideal extension is
//!   enumerated exactly once;
//! * the [`CostModel`] segment cost is monotone
//!   nondecreasing under growth, so a segment whose cost reaches the
//!   incumbent bound is pruned with all its extensions;
//! * an even-split lower bound on the remaining nodes prunes boundaries
//!   that cannot beat the incumbent;
//! * the incumbent starts at the packing-DP solution (optionally tightened
//!   by simulated annealing), so the search only explores strictly
//!   improving regions.
//!
//! The result is provably optimal unless the optional time budget expires,
//! in which case the incumbent is returned with
//! [`ExactSolution::proven_optimal`] `= false` (mirroring an ILP solver's
//! time-limited anytime behaviour). Tests certify optimality against
//! exhaustive enumeration on small graphs.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use respect_graph::{Dag, NodeId};

use crate::anneal::Annealing;
use crate::cost::{CostModel, SegmentAccumulator};
use crate::order;
use crate::pack;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// Dense bitset over node ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Box<[u64]>,
}

impl NodeSet {
    /// Empty set sized for `n` nodes.
    pub fn empty(n: usize) -> Self {
        NodeSet {
            words: vec![0u64; n.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Full set over `n` nodes.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(NodeId(i as u32));
        }
        s
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.words[v.index() / 64] >> (v.index() % 64) & 1 == 1
    }

    /// Inserts `v`.
    #[inline]
    pub fn insert(&mut self, v: NodeId) {
        self.words[v.index() / 64] |= 1 << (v.index() % 64);
    }

    /// Removes `v`.
    #[inline]
    pub fn remove(&mut self, v: NodeId) {
        self.words[v.index() / 64] &= !(1 << (v.index() % 64));
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Union with another set of the same universe.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        NodeSet {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64) as u32 + b))
                }
            })
        })
    }
}

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its bottleneck objective under the solver's cost model.
    pub objective: f64,
    /// `true` when the search completed (the schedule is provably
    /// optimal); `false` when the time budget expired first.
    pub proven_optimal: bool,
    /// Segment states explored, a proxy for ILP branch count.
    pub states_explored: u64,
}

/// Exact branch-and-bound scheduler. See the [module docs](self).
#[derive(Debug, Clone)]
#[must_use]
pub struct ExactScheduler {
    model: CostModel,
    /// Optional wall-clock budget; on expiry the incumbent is returned.
    pub time_budget: Option<Duration>,
    /// Simulated-annealing move budget for tightening the initial upper
    /// bound (0 disables the warm start).
    pub warmstart_moves: usize,
    /// Cold start: begin with an infinite incumbent bound, so the search
    /// must discover its own incumbents — the behaviour of a generic
    /// exact solver (e.g. an ILP) without heuristic priming. Runtime
    /// grows sharply with graph size, which is what the paper's Fig. 3
    /// measures for the CPLEX baseline.
    pub cold_start: bool,
}

impl ExactScheduler {
    /// Creates an exact scheduler with no time budget and a small
    /// annealing warm start.
    pub fn new(model: CostModel) -> Self {
        ExactScheduler {
            model,
            time_budget: None,
            warmstart_moves: 1_000,
            cold_start: false,
        }
    }

    /// Disables all heuristic priming (see [`Self::cold_start`]).
    pub fn cold(model: CostModel) -> Self {
        ExactScheduler {
            model,
            time_budget: None,
            warmstart_moves: 0,
            cold_start: true,
        }
    }

    /// Sets a wall-clock budget (anytime behaviour).
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Overrides the annealing warm-start move budget.
    pub fn with_warmstart_moves(mut self, moves: usize) -> Self {
        self.warmstart_moves = moves;
        self
    }

    /// The configured wall-clock budget, if any.
    #[must_use]
    pub fn time_budget(&self) -> Option<Duration> {
        self.time_budget
    }
}

impl Default for ExactScheduler {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl ExactScheduler {
    /// The cost model being optimized.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Runs the exact search.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoStages`] for `num_stages == 0`.
    pub fn solve(&self, dag: &Dag, num_stages: usize) -> Result<ExactSolution, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let n = dag.len();
        let topo = order::default_order(dag);
        let pos = order::positions(dag, &topo);
        let start_time = Instant::now();

        // ---- incumbent -----------------------------------------------------
        let (mut best, mut ub) = pack::pack_default(dag, num_stages, &self.model);
        if self.cold_start {
            // keep `best` only as a validity fallback for budget expiry;
            // the bound starts unprimed, as in a bare exact solver.
            ub = f64::INFINITY;
        } else if self.warmstart_moves > 0 && num_stages > 1 {
            let annealed = Annealing::new(self.model)
                .with_iterations(self.warmstart_moves)
                .schedule(dag, num_stages)?;
            let obj = self.model.objective(dag, &annealed);
            if obj < ub {
                ub = obj;
                best = annealed;
            }
        }

        let total_params = dag.total_param_bytes();
        let total_macs = dag.total_macs();
        let full = NodeSet::full(n);

        struct Entry {
            bottleneck: f64,
            covered_params: u64,
            covered_macs: u64,
        }

        let mut frontier: HashMap<NodeSet, Entry> = HashMap::new();
        frontier.insert(
            NodeSet::empty(n),
            Entry {
                bottleneck: 0.0,
                covered_params: 0,
                covered_macs: 0,
            },
        );
        // parent_of[k]: boundary after stage k -> boundary after stage k-1
        let mut parent_of: Vec<HashMap<NodeSet, NodeSet>> = vec![HashMap::new(); num_stages + 1];

        let mut states: u64 = 0;
        let mut timed_out = false;

        struct Dfs<'a> {
            dag: &'a Dag,
            model: &'a CostModel,
            pos: &'a [usize],
            ready: Vec<NodeId>,
            indeg_rem: Vec<u32>,
            seg: NodeSet,
        }

        'stages: for k in 1..=num_stages {
            let mut next: HashMap<NodeSet, Entry> = HashMap::new();
            let mut boundaries: Vec<(&NodeSet, &Entry)> = frontier.iter().collect();
            // expand promising boundaries first so ub tightens early
            boundaries.sort_by(|a, b| a.1.bottleneck.partial_cmp(&b.1.bottleneck).expect("finite"));
            for (boundary, entry) in boundaries {
                if entry.bottleneck >= ub {
                    continue;
                }
                if let Some(budget) = self.time_budget {
                    if start_time.elapsed() > budget {
                        timed_out = true;
                        break 'stages;
                    }
                }
                // ready set of the residual DAG beyond `boundary`
                let mut indeg_rem = vec![0u32; n];
                let mut ready = Vec::new();
                for v in dag.node_ids() {
                    if boundary.contains(v) {
                        continue;
                    }
                    let d = dag
                        .preds(v)
                        .iter()
                        .filter(|&&p| !boundary.contains(p))
                        .count() as u32;
                    indeg_rem[v.index()] = d;
                    if d == 0 {
                        ready.push(v);
                    }
                }
                let mut dfs = Dfs {
                    dag,
                    model: &self.model,
                    pos: &pos,
                    ready,
                    indeg_rem,
                    seg: NodeSet::empty(n),
                };

                // Recursive segment enumeration in canonical (topo-position)
                // order; implemented iteratively-recursively via a closure
                // stack to keep borrows simple.
                #[allow(clippy::too_many_arguments)]
                fn extend(
                    dfs: &mut Dfs<'_>,
                    boundary: &NodeSet,
                    base_bottleneck: f64,
                    covered_params: u64,
                    covered_macs: u64,
                    acc: SegmentAccumulator,
                    last_pos: usize,
                    k: usize,
                    num_stages: usize,
                    total_params: u64,
                    total_macs: u64,
                    full: &NodeSet,
                    ub: &mut f64,
                    best: &mut Schedule,
                    next: &mut HashMap<NodeSet, Entry>,
                    parent_of: &mut [HashMap<NodeSet, NodeSet>],
                    states: &mut u64,
                ) {
                    let candidates: Vec<NodeId> = dfs
                        .ready
                        .iter()
                        .copied()
                        .filter(|&v| last_pos == usize::MAX || dfs.pos[v.index()] > last_pos)
                        .collect();
                    for v in candidates {
                        let mut acc2 = acc;
                        acc2.push(dfs.dag, v, |p| boundary.contains(p));
                        let cost = acc2.cost(dfs.model);
                        *states += 1;
                        if cost >= *ub {
                            continue; // monotone: no extension can recover
                        }
                        let nb = base_bottleneck.max(cost);

                        // apply v
                        let slot = dfs.ready.iter().position(|&r| r == v).expect("ready");
                        dfs.ready.swap_remove(slot);
                        dfs.seg.insert(v);
                        let mut woken = Vec::new();
                        for &s in dfs.dag.succs(v) {
                            dfs.indeg_rem[s.index()] -= 1;
                            if dfs.indeg_rem[s.index()] == 0 {
                                dfs.ready.push(s);
                                woken.push(s);
                            }
                        }

                        let d2 = boundary.union(&dfs.seg);
                        if d2 == *full {
                            if nb < *ub {
                                *ub = nb;
                                // reconstruct: nodes beyond `boundary` are
                                // stage k-1; walk parents for the rest.
                                let mut stage_of = vec![0usize; dfs.dag.len()];
                                for u in dfs.seg.iter() {
                                    stage_of[u.index()] = k - 1;
                                }
                                let mut cur = boundary.clone();
                                for j in (1..k).rev() {
                                    let parent = parent_of[j].get(&cur).expect("chain").clone();
                                    for u in cur.iter() {
                                        if !parent.contains(u) {
                                            stage_of[u.index()] = j - 1;
                                        }
                                    }
                                    cur = parent;
                                }
                                *best =
                                    Schedule::new(stage_of, num_stages).expect("stages in range");
                            }
                        } else if k < num_stages {
                            // lower bound for the remainder
                            let rest_params = total_params - covered_params - acc2.param_bytes;
                            let rest_macs = total_macs - covered_macs - acc2.macs;
                            let m = (num_stages - k) as u64;
                            let spill = (rest_params / m).saturating_sub(dfs.model.cache_bytes);
                            let lb_rest = dfs.model.sec_per_mac * (rest_macs / m) as f64
                                + dfs.model.sec_per_byte * spill as f64;
                            if nb.max(lb_rest) < *ub {
                                let insert = match next.get(&d2) {
                                    Some(e) => nb < e.bottleneck,
                                    None => true,
                                };
                                if insert {
                                    next.insert(
                                        d2.clone(),
                                        Entry {
                                            bottleneck: nb,
                                            covered_params: covered_params + acc2.param_bytes,
                                            covered_macs: covered_macs + acc2.macs,
                                        },
                                    );
                                    parent_of[k].insert(d2, boundary.clone());
                                }
                            }
                        }

                        extend(
                            dfs,
                            boundary,
                            base_bottleneck,
                            covered_params,
                            covered_macs,
                            acc2,
                            dfs.pos[v.index()],
                            k,
                            num_stages,
                            total_params,
                            total_macs,
                            full,
                            ub,
                            best,
                            next,
                            parent_of,
                            states,
                        );

                        // undo v
                        for &s in woken.iter().rev() {
                            let wslot = dfs.ready.iter().position(|&r| r == s).expect("woken");
                            dfs.ready.swap_remove(wslot);
                        }
                        for &s in dfs.dag.succs(v) {
                            dfs.indeg_rem[s.index()] += 1;
                        }
                        dfs.seg.remove(v);
                        dfs.ready.push(v);
                    }
                }

                extend(
                    &mut dfs,
                    boundary,
                    entry.bottleneck,
                    entry.covered_params,
                    entry.covered_macs,
                    SegmentAccumulator::new(),
                    usize::MAX,
                    k,
                    num_stages,
                    total_params,
                    total_macs,
                    &full,
                    &mut ub,
                    &mut best,
                    &mut next,
                    &mut parent_of,
                    &mut states,
                );
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }

        debug_assert!(best.is_valid(dag));
        Ok(ExactSolution {
            objective: self.model.objective(dag, &best),
            schedule: best,
            proven_optimal: !timed_out,
            states_explored: states,
        })
    }
}

impl Scheduler for ExactScheduler {
    fn name(&self) -> &str {
        "exact (ILP)"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        Ok(self.solve(dag, num_stages)?.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use respect_graph::{DagBuilder, OpKind, OpNode, SyntheticConfig, SyntheticSampler};

    fn tiny_model() -> CostModel {
        CostModel {
            sec_per_mac: 1e-3,
            sec_per_byte: 1.0,
            cache_bytes: 4,
        }
    }

    fn small_dag(seed: u64, nodes: usize) -> respect_graph::Dag {
        let cfg = SyntheticConfig {
            num_nodes: nodes,
            max_in_degree: 3,
            param_bytes_range: (1, 64),
            output_bytes_range: (1, 16),
            ..SyntheticConfig::default()
        };
        SyntheticSampler::new(cfg, seed).sample()
    }

    #[test]
    fn nodeset_basic_operations() {
        let mut s = NodeSet::empty(130);
        assert_eq!(s.count(), 0);
        s.insert(NodeId(0));
        s.insert(NodeId(64));
        s.insert(NodeId(129));
        assert!(s.contains(NodeId(64)));
        assert!(!s.contains(NodeId(63)));
        assert_eq!(s.count(), 3);
        let ids: Vec<_> = s.iter().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(64), NodeId(129)]);
        s.remove(NodeId(64));
        assert_eq!(s.count(), 2);
        assert_eq!(NodeSet::full(130).count(), 130);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let model = tiny_model();
        let solver = ExactScheduler::new(model).with_warmstart_moves(200);
        for seed in 0..6 {
            let dag = small_dag(seed, 8);
            for k in [2, 3] {
                let sol = solver.solve(&dag, k).unwrap();
                assert!(sol.proven_optimal);
                assert!(sol.schedule.is_valid(&dag));
                let brute_obj = brute::optimal_objective(&dag, k, &model);
                assert!(
                    (sol.objective - brute_obj).abs() <= 1e-9 * brute_obj.max(1e-12),
                    "seed {seed} k={k}: exact {} vs brute {brute_obj}",
                    sol.objective
                );
            }
        }
    }

    #[test]
    fn never_worse_than_packing_dp() {
        let model = CostModel::coral();
        let solver = ExactScheduler::new(model).with_warmstart_moves(0);
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(3), 99);
        for _ in 0..3 {
            let dag = sampler.sample();
            for k in [2, 4] {
                let sol = solver.solve(&dag, k).unwrap();
                let (_, dp) = pack::pack_default(&dag, k, &model);
                assert!(sol.objective <= dp + 1e-12);
            }
        }
    }

    #[test]
    fn single_stage_is_whole_graph() {
        let dag = small_dag(1, 6);
        let model = tiny_model();
        let sol = ExactScheduler::new(model).solve(&dag, 1).unwrap();
        assert!(sol.schedule.stage_of().iter().all(|&s| s == 0));
        assert!(sol.proven_optimal);
    }

    #[test]
    fn finds_obvious_chain_split() {
        // two heavy nodes separated by a light chain: optimal 2-way split
        // puts one heavy node per side.
        let mut b = DagBuilder::new();
        let weights = [100u64, 1, 1, 100];
        let ids: Vec<_> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                b.add_node(
                    OpNode::new(format!("n{i}"), OpKind::Conv2d)
                        .with_params(w)
                        .with_output(1),
                )
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let dag = b.build().unwrap();
        let model = CostModel {
            sec_per_mac: 0.0,
            sec_per_byte: 1.0,
            cache_bytes: 0,
        };
        let sol = ExactScheduler::new(model).solve(&dag, 2).unwrap();
        // best split: {n0,n1} | {n2,n3} or {n0,n1,n2} | {n3}: bottleneck 102
        assert!((sol.objective - 102.0).abs() < 1e-9, "{}", sol.objective);
        assert!(sol.proven_optimal);
    }

    #[test]
    fn cold_start_matches_warm_start_optimum() {
        let model = tiny_model();
        for seed in 0..3 {
            let dag = small_dag(seed, 8);
            let warm = ExactScheduler::new(model).solve(&dag, 3).unwrap();
            let cold = ExactScheduler::cold(model).solve(&dag, 3).unwrap();
            assert!(warm.proven_optimal && cold.proven_optimal);
            assert!(
                (warm.objective - cold.objective).abs() <= 1e-9 * warm.objective.max(1e-12),
                "seed {seed}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            // the cold search does strictly more work
            assert!(cold.states_explored >= warm.states_explored);
        }
    }

    #[test]
    fn time_budget_returns_incumbent() {
        let dag = small_dag(3, 30);
        let model = CostModel::coral();
        let solver = ExactScheduler::new(model)
            .with_time_budget(Duration::from_nanos(1))
            .with_warmstart_moves(0);
        let sol = solver.solve(&dag, 4).unwrap();
        assert!(!sol.proven_optimal);
        assert!(sol.schedule.is_valid(&dag));
        // incumbent equals packing DP
        let (_, dp) = pack::pack_default(&dag, 4, &model);
        assert!(sol.objective <= dp + 1e-12);
    }

    #[test]
    fn zero_stages_is_an_error() {
        let dag = small_dag(4, 5);
        assert!(matches!(
            ExactScheduler::new(tiny_model()).solve(&dag, 0),
            Err(ScheduleError::NoStages)
        ));
    }

    #[test]
    fn paper_scale_synthetic_graphs_solve_quickly() {
        // training teacher must handle 30-node graphs fast
        let model = CostModel::coral();
        let solver = ExactScheduler::new(model).with_warmstart_moves(300);
        for deg in [2, 4, 6] {
            let dag = SyntheticSampler::new(SyntheticConfig::paper(deg), 7).sample();
            let sol = solver.solve(&dag, 4).unwrap();
            assert!(sol.proven_optimal, "deg {deg}");
            assert!(sol.schedule.is_valid(&dag));
        }
    }
}
