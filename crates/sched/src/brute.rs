//! Exhaustive optimum for small graphs.
//!
//! Enumerates every dependency-feasible stage assignment by DFS in
//! topological order (each node's stage is at least the maximum of its
//! parents' stages). Exponential — use only for graphs of roughly a dozen
//! nodes. Exists to certify [`crate::exact`] in tests; also handy for
//! unit-testing cost models.

use respect_graph::{topo, Dag};

use crate::cost::CostModel;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// [`Scheduler`] adapter over [`optimal_schedule`], for the registry and
/// any other `dyn Scheduler` context.
///
/// Exhaustive search is exponential in the node count, so the adapter
/// refuses graphs larger than [`BruteForce::max_nodes`] with a
/// structured [`ScheduleError::SolverFailed`] instead of hanging.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct BruteForce {
    model: CostModel,
    /// Largest graph the adapter will enumerate (default 12 nodes).
    pub max_nodes: usize,
}

impl BruteForce {
    /// Creates the adapter with the default 12-node cap.
    pub fn new(model: CostModel) -> Self {
        BruteForce {
            model,
            max_nodes: 12,
        }
    }

    /// Overrides the node-count cap. Every extra node multiplies the
    /// search by the stage count; raise with care.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }
}

impl Default for BruteForce {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Scheduler for BruteForce {
    fn name(&self) -> &str {
        "brute force"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        if dag.len() > self.max_nodes {
            return Err(ScheduleError::SolverFailed(format!(
                "graph has {} nodes; exhaustive search is capped at {} \
                 (use `exact` for large graphs)",
                dag.len(),
                self.max_nodes
            )));
        }
        Ok(optimal_schedule(dag, num_stages, &self.model).0)
    }
}

/// The optimal bottleneck objective over **all** valid `num_stages`-stage
/// schedules, by exhaustive enumeration.
///
/// # Panics
///
/// Panics if `num_stages == 0`. Intended for `|V| <= ~12`; larger graphs
/// will simply take exponential time.
pub fn optimal_objective(dag: &Dag, num_stages: usize, model: &CostModel) -> f64 {
    optimal_schedule(dag, num_stages, model).1
}

/// As [`optimal_objective`], also returning a witness schedule.
///
/// # Panics
///
/// Panics if `num_stages == 0`.
pub fn optimal_schedule(dag: &Dag, num_stages: usize, model: &CostModel) -> (Schedule, f64) {
    assert!(num_stages > 0, "at least one stage");
    let order = topo::topo_order(dag);
    let n = dag.len();
    let mut search = Search {
        dag,
        order: &order,
        num_stages,
        model,
        stage_of: vec![0usize; n],
        best: f64::INFINITY,
        best_assign: vec![0usize; n],
    };
    search.dfs(0);
    let schedule = Schedule::new(search.best_assign, num_stages).expect("stages in range");
    (schedule, search.best)
}

struct Search<'a> {
    dag: &'a Dag,
    order: &'a [respect_graph::NodeId],
    num_stages: usize,
    model: &'a CostModel,
    stage_of: Vec<usize>,
    best: f64,
    best_assign: Vec<usize>,
}

impl Search<'_> {
    fn dfs(&mut self, idx: usize) {
        if idx == self.order.len() {
            let s = Schedule::new(self.stage_of.clone(), self.num_stages).expect("stages in range");
            let obj = self.model.objective(self.dag, &s);
            if obj < self.best {
                self.best = obj;
                self.best_assign.copy_from_slice(&self.stage_of);
            }
            return;
        }
        let v = self.order[idx];
        let min_stage = self
            .dag
            .preds(v)
            .iter()
            .map(|&p| self.stage_of[p.index()])
            .max()
            .unwrap_or(0);
        for s in min_stage..self.num_stages {
            self.stage_of[v.index()] = s;
            self.dfs(idx + 1);
        }
        self.stage_of[v.index()] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, OpKind, OpNode};

    fn chain(params: &[u64]) -> Dag {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = params
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                b.add_node(
                    OpNode::new(format!("n{i}"), OpKind::Conv2d)
                        .with_params(p)
                        .with_output(1),
                )
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    fn mem_model() -> CostModel {
        CostModel {
            sec_per_mac: 0.0,
            sec_per_byte: 1.0,
            cache_bytes: 0,
        }
    }

    #[test]
    fn brute_force_on_known_chain() {
        let dag = chain(&[3, 3, 3, 3]);
        // 2 stages: best split 2+2 -> max(6, 6+1 cut byte) = 7
        let (s, obj) = optimal_schedule(&dag, 2, &mem_model());
        assert!(s.is_valid(&dag));
        assert!((obj - 7.0).abs() < 1e-12, "obj={obj}");
    }

    #[test]
    fn one_stage_means_sum() {
        let dag = chain(&[2, 5]);
        assert!((optimal_objective(&dag, 1, &mem_model()) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn extra_stages_never_increase_cost() {
        let dag = chain(&[4, 1, 2, 8]);
        let m = mem_model();
        let o2 = optimal_objective(&dag, 2, &m);
        let o3 = optimal_objective(&dag, 3, &m);
        let o4 = optimal_objective(&dag, 4, &m);
        assert!(o3 <= o2 + 1e-12);
        assert!(o4 <= o3 + 1e-12);
    }

    #[test]
    fn respects_dependencies_on_diamond() {
        let mut b = DagBuilder::new();
        let a = b.add_node(
            OpNode::new("a", OpKind::Conv2d)
                .with_params(1)
                .with_output(1),
        );
        let x = b.add_node(
            OpNode::new("x", OpKind::Conv2d)
                .with_params(9)
                .with_output(1),
        );
        let y = b.add_node(
            OpNode::new("y", OpKind::Conv2d)
                .with_params(9)
                .with_output(1),
        );
        let z = b.add_node(
            OpNode::new("z", OpKind::Conv2d)
                .with_params(1)
                .with_output(1),
        );
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        let dag = b.build().unwrap();
        let (s, _) = optimal_schedule(&dag, 2, &mem_model());
        assert!(s.is_valid(&dag));
    }

    #[test]
    fn adapter_matches_free_function() {
        let dag = chain(&[3, 1, 4, 1, 5]);
        let model = mem_model();
        let via_adapter = BruteForce::new(model).schedule(&dag, 3).unwrap();
        let (via_fn, obj) = optimal_schedule(&dag, 3, &model);
        assert_eq!(via_adapter, via_fn);
        assert!((model.objective(&dag, &via_adapter) - obj).abs() < 1e-18);
        assert_eq!(BruteForce::new(model).name(), "brute force");
    }

    #[test]
    fn adapter_rejects_oversized_graphs_without_panicking() {
        let params: Vec<u64> = (0..20).map(|i| i + 1).collect();
        let dag = chain(&params);
        let err = BruteForce::new(mem_model()).schedule(&dag, 2).unwrap_err();
        assert!(matches!(err, ScheduleError::SolverFailed(_)), "{err}");
        assert!(err.to_string().contains("20 nodes"), "{err}");
    }

    #[test]
    fn adapter_rejects_zero_stages() {
        let dag = chain(&[1, 2]);
        assert!(matches!(
            BruteForce::new(mem_model()).schedule(&dag, 0),
            Err(ScheduleError::NoStages)
        ));
    }

    #[test]
    fn adapter_cap_is_adjustable() {
        let params: Vec<u64> = (0..14).map(|i| i + 1).collect();
        let dag = chain(&params);
        let model = mem_model();
        assert!(BruteForce::new(model).schedule(&dag, 2).is_err());
        let s = BruteForce::new(model)
            .with_max_nodes(14)
            .schedule(&dag, 2)
            .unwrap();
        assert!(s.is_valid(&dag));
    }
}
