//! Force-directed scheduling (Paulin & Knight, 1989) — the other classic
//! RCS heuristic the paper cites (Sec. II, ref 12).
//!
//! Given a latency bound of `L` control steps, FDS assigns each operation
//! to a step inside its `[ASAP, ALAP]` time frame so that the expected
//! resource usage ("distribution graph") stays flat: at every step the
//! candidate with the smallest *force* (increase in squared distribution)
//! is committed, and frames of its predecessors/successors shrink
//! accordingly. Included as a substrate; pipeline partitioning uses the
//! solvers in [`crate::pack`] / [`crate::exact`].

use respect_graph::{topo, Dag, NodeId};

use crate::cost::CostModel;
use crate::pack;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// [`Scheduler`] adapter projecting force-directed scheduling onto
/// pipeline partitioning, for the registry and any other `dyn Scheduler`
/// context.
///
/// FDS assigns control steps under a latency bound, not pipeline stages,
/// so the adapter is a list-scheduling projection: run
/// [`force_directed`] with latency `depth + 1 + slack` (the minimum
/// feasible bound plus [`ForceDirected::slack`] steps of freedom), order
/// nodes by `(step, node id)` — a topological order, since edges strictly
/// increase steps — and cut that order into `num_stages` contiguous
/// segments with the optimal packing DP ([`pack::pack`]).
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct ForceDirected {
    model: CostModel,
    /// Latency slack beyond the critical path (default 2). More slack
    /// widens the `[ASAP, ALAP]` frames FDS balances over, at quadratic
    /// cost in frame width.
    pub slack: usize,
}

impl ForceDirected {
    /// Creates the adapter with the default slack of 2 steps.
    pub fn new(model: CostModel) -> Self {
        ForceDirected { model, slack: 2 }
    }

    /// Overrides the latency slack.
    pub fn with_slack(mut self, slack: usize) -> Self {
        self.slack = slack;
        self
    }
}

impl Default for ForceDirected {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Scheduler for ForceDirected {
    fn name(&self) -> &str {
        "force-directed"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let latency = dag.depth() + 1 + self.slack;
        let steps = force_directed(dag, latency);
        let mut order: Vec<NodeId> = dag.node_ids().collect();
        order.sort_by_key(|&v| (steps[v.index()], v));
        Ok(pack::pack(dag, &order, num_stages, &self.model).0)
    }
}

/// Assigns every node a control step in `0..latency`, minimizing the peak
/// expected concurrency. Returns the step per node (indexed by node id).
///
/// # Panics
///
/// Panics if `latency` is smaller than the graph's critical path
/// (`dag.depth() + 1` steps).
pub fn force_directed(dag: &Dag, latency: usize) -> Vec<usize> {
    let n = dag.len();
    let depth = dag.depth();
    assert!(
        latency > depth,
        "latency {latency} below critical path {}",
        depth + 1
    );
    let slack = latency - 1 - depth;
    let mut asap = topo::asap_levels(dag);
    let mut alap: Vec<usize> = topo::alap_levels(dag).iter().map(|&l| l + slack).collect();
    let order = topo::topo_order(dag);

    // distribution graph: sum over nodes of 1/frame_width per step
    let mut scheduled = vec![false; n];
    for _ in 0..n {
        // recompute distribution
        let mut dist = vec![0f64; latency];
        for v in dag.node_ids() {
            let (a, l) = (asap[v.index()], alap[v.index()]);
            let w = (l - a + 1) as f64;
            for d in &mut dist[a..=l] {
                *d += 1.0 / w;
            }
        }
        // pick the unscheduled (node, step) with minimal self force
        let mut best: Option<(f64, usize, usize)> = None;
        for &v in &order {
            if scheduled[v.index()] {
                continue;
            }
            let (a, l) = (asap[v.index()], alap[v.index()]);
            let w = (l - a + 1) as f64;
            for step in a..=l {
                // self force: dist(step)*(1 - 1/w) - sum_{other steps} dist/w
                let mut force = dist[step] * (1.0 - 1.0 / w);
                for (other, d) in dist.iter().enumerate().take(l + 1).skip(a) {
                    if other != step {
                        force -= d / w;
                    }
                }
                let better = match best {
                    None => true,
                    Some((bf, _, _)) => force < bf - 1e-12,
                };
                if better {
                    best = Some((force, v.index(), step));
                }
            }
        }
        let (_, vi, step) = best.expect("some node is unscheduled");
        scheduled[vi] = true;
        asap[vi] = step;
        alap[vi] = step;
        // propagate frame tightening
        for &u in &order {
            for &s in dag.succs(u) {
                let min_next = asap[u.index()] + 1;
                if asap[s.index()] < min_next {
                    asap[s.index()] = min_next;
                }
            }
        }
        for &u in order.iter().rev() {
            for &s in dag.succs(u) {
                let max_prev = alap[s.index()].saturating_sub(1);
                if alap[u.index()] > max_prev {
                    alap[u.index()] = max_prev;
                }
            }
        }
    }
    asap
}

/// Peak concurrency (max nodes per step) of a step assignment.
pub fn peak_concurrency(steps: &[usize]) -> usize {
    let mut counts = std::collections::HashMap::new();
    for &s in steps {
        *counts.entry(s).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, NodeId, OpKind, OpNode};

    fn dag_from_edges(n: usize, edges: &[(u32, u32)]) -> Dag {
        let mut b = DagBuilder::new();
        for i in 0..n {
            b.add_node(OpNode::new(format!("n{i}"), OpKind::Other));
        }
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn respects_precedence() {
        let dag = dag_from_edges(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]);
        let steps = force_directed(&dag, 6);
        for (u, v) in dag.edges() {
            assert!(steps[u.index()] < steps[v.index()]);
        }
        assert!(steps.iter().all(|&s| s < 6));
    }

    #[test]
    fn chain_fills_exact_latency() {
        let dag = dag_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let steps = force_directed(&dag, 4);
        assert_eq!(steps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn slack_flattens_concurrency() {
        // 6 independent nodes, latency 3: FDS should spread them 2/2/2
        let dag = dag_from_edges(6, &[]);
        let steps = force_directed(&dag, 3);
        assert_eq!(peak_concurrency(&steps), 2, "steps={steps:?}");
    }

    #[test]
    fn beats_asap_peak_when_slack_exists() {
        // two parallel chains of length 2 plus 2 free nodes, latency 4
        let dag = dag_from_edges(6, &[(0, 1), (2, 3)]);
        let steps = force_directed(&dag, 4);
        let asap_peak = peak_concurrency(&respect_graph::topo::asap_levels(&dag));
        assert!(peak_concurrency(&steps) <= asap_peak);
    }

    #[test]
    #[should_panic(expected = "below critical path")]
    fn rejects_infeasible_latency() {
        let dag = dag_from_edges(3, &[(0, 1), (1, 2)]);
        let _ = force_directed(&dag, 2);
    }

    #[test]
    fn adapter_produces_valid_schedules() {
        let dag = dag_from_edges(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]);
        let sched = ForceDirected::new(CostModel::coral());
        for k in [1, 2, 3] {
            let s = sched.schedule(&dag, k).unwrap();
            assert!(s.is_valid(&dag), "k={k}");
            assert_eq!(s.num_stages(), k);
        }
        assert_eq!(sched.name(), "force-directed");
    }

    #[test]
    fn adapter_rejects_zero_stages() {
        let dag = dag_from_edges(2, &[(0, 1)]);
        assert!(matches!(
            ForceDirected::new(CostModel::coral()).schedule(&dag, 0),
            Err(ScheduleError::NoStages)
        ));
    }

    #[test]
    fn adapter_projected_order_is_topological() {
        let dag = dag_from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let steps = force_directed(&dag, dag.depth() + 3);
        let mut order: Vec<NodeId> = dag.node_ids().collect();
        order.sort_by_key(|&v| (steps[v.index()], v));
        assert!(respect_graph::topo::is_topological_order(&dag, &order));
    }
}
