//! Cost-aware greedy list scheduling.
//!
//! The classic "list scheduling" family the paper cites (Sec. II) walks a
//! priority-ordered node list and greedily assigns resources. For pipeline
//! partitioning this becomes: walk the default topological order,
//! accumulate a segment until its [`CostModel`] cost exceeds an even-split
//! target, then cut. A bounded hill-climb over cut positions — costed by
//! the `O(deg + k)`-per-move [`IncrementalEvaluator`] rather than full
//! re-aggregation — then polishes the boundaries. Still faster but weaker
//! than the packing DP (which is optimal over cut placements on this
//! order), and a useful middle ground between the parameter-balancing
//! compiler and the exact solver.

use respect_graph::Dag;

use crate::cost::{CostModel, SegmentAccumulator};
use crate::incremental::IncrementalEvaluator;
use crate::order;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// Greedy cost-threshold list scheduler.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct GreedyCost {
    model: CostModel,
    /// Multiplier on the even-split target before cutting (1.0 = cut as
    /// soon as the target is exceeded).
    slack: f64,
    /// Boundary-refinement sweeps over the cuts after the greedy pass
    /// (0 disables refinement).
    refine_passes: usize,
}

impl GreedyCost {
    /// Creates the scheduler with default slack 1.0 and two boundary
    /// refinement sweeps.
    pub fn new(model: CostModel) -> Self {
        GreedyCost {
            model,
            slack: 1.0,
            refine_passes: 2,
        }
    }

    /// Adjusts the cut threshold multiplier.
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack;
        self
    }

    /// Overrides the number of boundary-refinement sweeps (0 reproduces
    /// the pure one-pass list scheduler).
    pub fn with_refinement(mut self, passes: usize) -> Self {
        self.refine_passes = passes;
        self
    }
}

impl Default for GreedyCost {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Scheduler for GreedyCost {
    fn name(&self) -> &str {
        "greedy list"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let sequence = order::default_order(dag);
        let pos = order::positions(dag, &sequence);

        // Even-split target: total single-stage cost divided by stages.
        let total_cost = {
            let mut acc = SegmentAccumulator::new();
            for &v in &sequence {
                acc.push(dag, v, |_| false);
            }
            acc.cost(&self.model)
        };
        let target = self.slack * total_cost / num_stages as f64;

        let mut cuts = Vec::with_capacity(num_stages - 1);
        let mut start = 0usize;
        let mut acc = SegmentAccumulator::new();
        for (i, &v) in sequence.iter().enumerate() {
            acc.push(dag, v, |p| pos[p.index()] < start);
            let remaining_stages = num_stages - cuts.len() - 1;
            let remaining_nodes = sequence.len() - i - 1;
            if remaining_stages > 0
                && acc.cost(&self.model) >= target
                && remaining_nodes >= remaining_stages.min(1)
            {
                cuts.push(i + 1);
                start = i + 1;
                acc = SegmentAccumulator::new();
            }
        }
        while cuts.len() + 1 < num_stages {
            cuts.push(sequence.len());
        }
        let schedule = Schedule::from_cuts(&sequence, &cuts, num_stages);
        if self.refine_passes == 0 || num_stages < 2 {
            return Ok(schedule);
        }

        // boundary refinement: hill-climb cut positions, costing each
        // one-node shift incrementally instead of re-aggregating stages
        let mut eval = IncrementalEvaluator::new(dag, self.model, &schedule);
        let mut obj = eval.bottleneck();
        for _ in 0..self.refine_passes {
            let mut improved = false;
            for idx in 0..cuts.len() {
                loop {
                    let lo = if idx == 0 { 0 } else { cuts[idx - 1] };
                    let hi = if idx + 1 == cuts.len() {
                        sequence.len()
                    } else {
                        cuts[idx + 1]
                    };
                    let mut moved = false;
                    for delta in [1isize, -1] {
                        let old = cuts[idx];
                        let to = old.saturating_add_signed(delta).clamp(lo, hi);
                        if to == old {
                            continue;
                        }
                        // one cut shift = one node crossing one boundary
                        let (p, shift): (usize, isize) = if to > old { (old, -1) } else { (to, 1) };
                        let node = sequence[p];
                        let stage = eval.stage(node).saturating_add_signed(shift);
                        let prev = eval.move_node(node, stage);
                        let cand = eval.bottleneck();
                        if cand < obj {
                            obj = cand;
                            cuts[idx] = to;
                            moved = true;
                            improved = true;
                            break;
                        }
                        eval.move_node(node, prev);
                    }
                    if !moved {
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        Ok(eval.to_schedule())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack;
    use respect_graph::{models, SyntheticConfig, SyntheticSampler};

    #[test]
    fn valid_on_all_models_and_stage_counts() {
        let sched = GreedyCost::new(CostModel::coral());
        for (name, dag) in models::table1() {
            for k in [1, 4, 5, 6] {
                let s = sched.schedule(&dag, k).unwrap();
                assert!(s.is_valid(&dag), "{name} k={k}");
            }
        }
    }

    #[test]
    fn never_better_than_packing_dp_on_same_order() {
        let model = CostModel::coral();
        let sched = GreedyCost::new(model);
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(3), 77);
        for _ in 0..10 {
            let dag = sampler.sample();
            for k in [2, 4] {
                let s = sched.schedule(&dag, k).unwrap();
                let greedy_obj = model.objective(&dag, &s);
                let (_, dp_obj) = pack::pack_default(&dag, k, &model);
                assert!(
                    dp_obj <= greedy_obj + 1e-12,
                    "dp {dp_obj} must be <= greedy {greedy_obj}"
                );
            }
        }
    }

    #[test]
    fn rejects_zero_stages() {
        let dag = models::xception();
        assert!(matches!(
            GreedyCost::new(CostModel::coral()).schedule(&dag, 0),
            Err(ScheduleError::NoStages)
        ));
    }

    #[test]
    fn refinement_never_worsens_and_stays_valid() {
        let model = CostModel::coral();
        for (name, dag) in models::table1() {
            for k in [2, 4, 6] {
                let plain = GreedyCost::new(model)
                    .with_refinement(0)
                    .schedule(&dag, k)
                    .unwrap();
                let refined = GreedyCost::new(model).schedule(&dag, k).unwrap();
                assert!(refined.is_valid(&dag), "{name} k={k}");
                assert!(
                    model.objective(&dag, &refined) <= model.objective(&dag, &plain) + 1e-18,
                    "{name} k={k}: refinement worsened the objective"
                );
            }
        }
    }

    #[test]
    fn slack_changes_cut_placement() {
        let dag = models::resnet50();
        let a = GreedyCost::new(CostModel::coral())
            .schedule(&dag, 4)
            .unwrap();
        let b = GreedyCost::new(CostModel::coral())
            .with_slack(1.8)
            .schedule(&dag, 4)
            .unwrap();
        assert_ne!(a, b);
    }
}
