//! Node-sequence helpers: the solution space of the paper is a
//! dependency-respecting node sequence `π` (Sec. III-B) plus the packing
//! `ρ`; this module provides deterministic and randomized sequences and
//! position bookkeeping.

use rand::Rng;

use respect_graph::{topo, Dag, NodeId};

/// Deterministic default execution order (Kahn, smallest ready id first) —
/// the order the commercial compiler consumes the flattened model in.
pub fn default_order(dag: &Dag) -> Vec<NodeId> {
    topo::topo_order(dag)
}

/// A uniformly random topological order (random ready-node tie breaking).
///
/// Used by simulated annealing restarts and training-data augmentation.
pub fn random_topo_order(dag: &Dag, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = dag.len();
    let mut indeg: Vec<usize> = dag.node_ids().map(|v| dag.in_degree(v)).collect();
    let mut ready: Vec<NodeId> = dag.node_ids().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let i = rng.gen_range(0..ready.len());
        let v = ready.swap_remove(i);
        order.push(v);
        for &s in dag.succs(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    order
}

/// Position of every node inside `order` (`pos[v.index()]`).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the graph's nodes.
pub fn positions(dag: &Dag, order: &[NodeId]) -> Vec<usize> {
    assert_eq!(order.len(), dag.len(), "order must cover every node");
    let mut pos = vec![usize::MAX; dag.len()];
    for (i, &v) in order.iter().enumerate() {
        assert!(pos[v.index()] == usize::MAX, "duplicate node in order");
        pos[v.index()] = i;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use respect_graph::{SyntheticConfig, SyntheticSampler};

    #[test]
    fn random_orders_are_topological() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(4), 9);
        let dag = sampler.sample();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let order = random_topo_order(&dag, &mut rng);
            assert!(topo::is_topological_order(&dag, &order));
        }
    }

    #[test]
    fn random_orders_vary() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(2), 9);
        let dag = sampler.sample();
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_topo_order(&dag, &mut rng);
        let b = random_topo_order(&dag, &mut rng);
        assert_ne!(a, b, "two draws should differ on a 30-node graph");
    }

    #[test]
    fn positions_invert_order() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(3), 5);
        let dag = sampler.sample();
        let order = default_order(&dag);
        let pos = positions(&dag, &order);
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(pos[v.index()], i);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn positions_reject_duplicates() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(3), 5);
        let dag = sampler.sample();
        let mut order = default_order(&dag);
        order[1] = order[0];
        let _ = positions(&dag, &order);
    }
}
