//! Simulated annealing over (sequence, cuts) — the "iterative
//! metaheuristics" family the paper positions between heuristics and exact
//! solvers (Sec. II).
//!
//! The state is a topological order plus `num_stages - 1` cut positions.
//! Moves: shift one cut by one node, or swap two adjacent sequence nodes
//! when no edge forbids it. Acceptance follows the Metropolis rule with a
//! geometric temperature schedule. Also used to tighten the exact solver's
//! initial upper bound.
//!
//! Every proposal is costed through an [`IncrementalEvaluator`]: a cut
//! shift moves exactly one node across a stage boundary and an adjacent
//! swap moves at most two, so candidate objectives cost `O(deg + k)`
//! instead of the full `O(V + E)` recomputation — the evaluator is
//! bitwise-equivalent to [`CostModel::stage_costs`], so accept/reject
//! decisions (and thus results per seed) match a full-recompute loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use respect_graph::{Dag, NodeId};

use crate::cost::CostModel;
use crate::incremental::IncrementalEvaluator;
use crate::order;
use crate::pack;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// Simulated-annealing pipeline scheduler.
#[derive(Debug, Clone)]
#[must_use]
pub struct Annealing {
    model: CostModel,
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial objective.
    pub init_temp_frac: f64,
    /// Geometric cooling factor applied every iteration.
    pub cooling: f64,
    /// RNG seed (annealing is deterministic per seed).
    pub seed: u64,
}

impl Annealing {
    /// Creates an annealer with sensible defaults (5 000 moves).
    pub fn new(model: CostModel) -> Self {
        Annealing {
            model,
            iterations: 5_000,
            init_temp_frac: 0.2,
            cooling: 0.999,
            seed: 0x5eed,
        }
    }

    /// Overrides the move budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for Annealing {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Scheduler for Annealing {
    fn name(&self) -> &str {
        "simulated annealing"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Start from the packing-DP solution on the default order.
        let (init, _) = pack::pack_default(dag, num_stages, &self.model);
        let mut sequence = order::default_order(dag);
        let mut cuts = vec![0usize; num_stages - 1];
        {
            // recover cut positions from the packed schedule
            let mut counts = vec![0usize; num_stages];
            for &s in init.stage_of() {
                counts[s] += 1;
            }
            let mut acc = 0;
            for k in 0..num_stages - 1 {
                acc += counts[k];
                cuts[k] = acc;
            }
        }
        let mut eval = IncrementalEvaluator::new(dag, self.model, &init);

        let mut cur_obj = eval.bottleneck();
        let mut best = init;
        let mut best_obj = cur_obj;
        let mut temp = (cur_obj * self.init_temp_frac).max(f64::MIN_POSITIVE);

        let n = dag.len();
        for _ in 0..self.iterations {
            // applied single-node moves, in order, for a possible undo
            enum Applied {
                Cut {
                    idx: usize,
                    old: usize,
                    node: NodeId,
                    prev: usize,
                },
                Swap {
                    i: usize,
                    moved: Option<(NodeId, usize, NodeId, usize)>,
                },
            }
            let applied = if num_stages > 1 && rng.gen_bool(0.5) {
                let idx = rng.gen_range(0..cuts.len());
                let lo = if idx == 0 { 0 } else { cuts[idx - 1] };
                let hi = if idx + 1 == cuts.len() {
                    n
                } else {
                    cuts[idx + 1]
                };
                let delta: isize = if rng.gen_bool(0.5) { 1 } else { -1 };
                let old = cuts[idx];
                let to = old.saturating_add_signed(delta).clamp(lo, hi);
                if to == old {
                    continue;
                }
                // shifting one cut by one position moves exactly one node
                // across one stage boundary: cut up (`old → old + 1`)
                // pulls the node at position `old` one stage earlier, cut
                // down pushes the node at position `to` one stage later
                let (pos, shift): (usize, isize) = if to > old { (old, -1) } else { (to, 1) };
                let node = sequence[pos];
                let stage = eval.stage(node).saturating_add_signed(shift);
                let prev = eval.move_node(node, stage);
                cuts[idx] = to;
                Applied::Cut {
                    idx,
                    old,
                    node,
                    prev,
                }
            } else {
                if n < 2 {
                    continue;
                }
                let i = rng.gen_range(0..n - 1);
                let (u, v) = (sequence[i], sequence[i + 1]);
                if dag.has_edge(u, v) {
                    continue; // swap would break the topological order
                }
                let (su, sv) = (eval.stage(u), eval.stage(v));
                sequence.swap(i, i + 1);
                // positions keep their stages, so the nodes trade stages
                // only when a cut separates them
                let moved = if su != sv {
                    eval.move_node(u, sv);
                    eval.move_node(v, su);
                    Some((u, su, v, sv))
                } else {
                    None
                };
                Applied::Swap { i, moved }
            };
            let cand_obj = eval.bottleneck();
            let accept = cand_obj <= cur_obj
                || rng.gen_bool(((cur_obj - cand_obj) / temp).exp().clamp(0.0, 1.0));
            if accept {
                cur_obj = cand_obj;
                if cand_obj < best_obj {
                    best_obj = cand_obj;
                    best = eval.to_schedule();
                }
            } else {
                match applied {
                    Applied::Cut {
                        idx,
                        old,
                        node,
                        prev,
                    } => {
                        eval.move_node(node, prev);
                        cuts[idx] = old;
                    }
                    Applied::Swap { i, moved } => {
                        if let Some((u, su, v, sv)) = moved {
                            eval.move_node(u, su);
                            eval.move_node(v, sv);
                        }
                        sequence.swap(i, i + 1);
                    }
                }
            }
            temp *= self.cooling;
        }
        debug_assert!(best.is_valid(dag));
        debug_assert_eq!(
            best_obj.to_bits(),
            self.model.objective(dag, &best).to_bits(),
            "incremental objective drifted from full recomputation"
        );
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{models, SyntheticConfig, SyntheticSampler};

    #[test]
    fn annealing_never_worse_than_its_init() {
        let model = CostModel::coral();
        let annealer = Annealing::new(model).with_iterations(500);
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(3), 41);
        for _ in 0..5 {
            let dag = sampler.sample();
            let (_, init_obj) = pack::pack_default(&dag, 4, &model);
            let s = annealer.schedule(&dag, 4).unwrap();
            assert!(s.is_valid(&dag));
            assert!(model.objective(&dag, &s) <= init_obj + 1e-12);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let model = CostModel::coral();
        let dag = models::xception();
        let a = Annealing::new(model)
            .with_iterations(300)
            .with_seed(1)
            .schedule(&dag, 4)
            .unwrap();
        let b = Annealing::new(model)
            .with_iterations(300)
            .with_seed(1)
            .schedule(&dag, 4)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_zero_stages() {
        let dag = models::xception();
        assert!(matches!(
            Annealing::new(CostModel::coral()).schedule(&dag, 0),
            Err(ScheduleError::NoStages)
        ));
    }

    #[test]
    fn single_stage_is_trivial() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(2), 3);
        let dag = sampler.sample();
        let s = Annealing::new(CostModel::coral())
            .with_iterations(50)
            .schedule(&dag, 1)
            .unwrap();
        assert!(s.stage_of().iter().all(|&x| x == 0));
    }
}
