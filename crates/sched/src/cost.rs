//! The memory- and communication-aware stage cost model.
//!
//! The paper (Sec. IV-A) states that "both the exact method and RESPECT
//! optimize the DNN model scheduling from the aspects of the memory
//! allocation and communication cost". Following its ref.&nbsp;21 (exact
//! memory- and communication-aware Edge TPU scheduling), a stage's cost is
//! the per-inference latency estimate
//!
//! ```text
//! cost(stage) = sec_per_mac * macs(stage)
//!             + sec_per_byte * off_cache_params(stage)   // streamed weights
//!             + sec_per_byte * cut_in_bytes(stage)       // tensors entering
//! ```
//!
//! and a schedule's **objective** is the bottleneck `max` over stages —
//! the steady-state reciprocal throughput of the pipeline. Off-cache
//! parameters are whatever exceeds the Edge TPU's 8 MiB on-chip cache and
//! must be re-streamed over USB for every inference (Coral architecture;
//! paper refs 3 and 20). Cut bytes are accounted once, at the consuming
//! stage.
//!
//! The model is intentionally simpler than the cycle-level simulator in
//! `respect-tpu`: the paper calls the resulting optimality gap
//! "performance modeling miscorrelation" (Sec. IV-A) and we reproduce it.

use serde::{Deserialize, Serialize};

use respect_graph::{Dag, NodeId};

use crate::schedule::Schedule;

/// Cost-model constants. See the [module docs](self) for the formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds per multiply-accumulate (Coral: 4 TOPS int8 peak).
    pub sec_per_mac: f64,
    /// Seconds per byte moved over the USB 3.0 interface.
    pub sec_per_byte: f64,
    /// On-chip parameter cache per Edge TPU, in bytes (8 MiB on Coral).
    pub cache_bytes: u64,
}

impl CostModel {
    /// Constants of the Coral USB Edge TPU: 4 TOPS int8 (2 ops per MAC),
    /// ~320 MB/s effective USB 3.0 throughput, 8 MiB parameter cache.
    pub fn coral() -> Self {
        CostModel {
            sec_per_mac: 1.0 / 2.0e12,
            sec_per_byte: 1.0 / 320.0e6,
            cache_bytes: 8 << 20,
        }
    }

    /// A cache-less variant (every parameter byte streams), useful for
    /// ablations.
    pub fn coral_uncached() -> Self {
        CostModel {
            cache_bytes: 0,
            ..Self::coral()
        }
    }

    /// Cost of one stage given its aggregate resources.
    #[inline]
    pub fn stage_cost(&self, param_bytes: u64, macs: u64, cut_in_bytes: u64) -> f64 {
        let spill = param_bytes.saturating_sub(self.cache_bytes);
        self.sec_per_mac * macs as f64 + self.sec_per_byte * (spill + cut_in_bytes) as f64
    }

    /// Aggregates `(param_bytes, macs, cut_in_bytes)` per stage.
    pub fn stage_resources(&self, dag: &Dag, schedule: &Schedule) -> Vec<StageResources> {
        let k = schedule.num_stages();
        let mut res = vec![StageResources::default(); k];
        for (id, node) in dag.iter() {
            let s = schedule.stage(id);
            res[s].param_bytes += node.param_bytes;
            res[s].macs += node.macs;
        }
        for (u, v) in dag.edges() {
            let (su, sv) = (schedule.stage(u), schedule.stage(v));
            if su != sv {
                res[sv].cut_in_bytes += dag.node(u).output_bytes;
            }
        }
        res
    }

    /// Per-stage costs under this model.
    pub fn stage_costs(&self, dag: &Dag, schedule: &Schedule) -> Vec<f64> {
        self.stage_resources(dag, schedule)
            .iter()
            .map(|r| self.stage_cost(r.param_bytes, r.macs, r.cut_in_bytes))
            .collect()
    }

    /// The bottleneck objective: `max` over per-stage costs.
    pub fn objective(&self, dag: &Dag, schedule: &Schedule) -> f64 {
        self.stage_costs(dag, schedule)
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// Peak per-stage parameter memory in bytes — the Fig. 5 metric
    /// ("parameter caching" / peak memory usage per stage).
    pub fn peak_stage_param_bytes(&self, dag: &Dag, schedule: &Schedule) -> u64 {
        self.stage_resources(dag, schedule)
            .iter()
            .map(|r| r.param_bytes)
            .max()
            .unwrap_or(0)
    }

    /// A lower bound on the objective for any `num_stages`-stage schedule:
    /// resources divided evenly with zero communication.
    pub fn lower_bound(&self, dag: &Dag, num_stages: usize) -> f64 {
        let total_params = dag.total_param_bytes();
        let total_macs = dag.total_macs();
        let k = num_stages.max(1) as u64;
        let spill = (total_params / k).saturating_sub(self.cache_bytes);
        self.sec_per_mac * (total_macs / k) as f64 + self.sec_per_byte * spill as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::coral()
    }
}

/// Aggregate resources of one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageResources {
    /// Total parameter bytes resident on the stage.
    pub param_bytes: u64,
    /// Total MACs executed by the stage per inference.
    pub macs: u64,
    /// Bytes of activation tensors entering the stage per inference.
    pub cut_in_bytes: u64,
}

/// Incremental segment-cost accumulator shared by the packing DP, the
/// greedy scheduler, and the exact solver.
///
/// A segment is a set of nodes executed by one stage. Nodes are added one
/// at a time; `cut_in_bytes` grows by the output size of every predecessor
/// that is *outside* the segment (already scheduled on an earlier stage).
/// Under this accounting the cost is **monotone nondecreasing** in segment
/// growth, which the exact solver's pruning relies on.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentAccumulator {
    /// Parameter bytes accumulated so far.
    pub param_bytes: u64,
    /// MACs accumulated so far.
    pub macs: u64,
    /// Cut-in bytes accumulated so far.
    pub cut_in_bytes: u64,
}

impl SegmentAccumulator {
    /// Empty segment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds node `v`; `in_segment_or_later(p)` must report `false` exactly
    /// for predecessors scheduled on earlier stages.
    pub fn push(&mut self, dag: &Dag, v: NodeId, mut earlier_stage: impl FnMut(NodeId) -> bool) {
        let node = dag.node(v);
        self.param_bytes += node.param_bytes;
        self.macs += node.macs;
        for &p in dag.preds(v) {
            if earlier_stage(p) {
                self.cut_in_bytes += dag.node(p).output_bytes;
            }
        }
    }

    /// Cost of the accumulated segment under `model`.
    #[inline]
    pub fn cost(&self, model: &CostModel) -> f64 {
        model.stage_cost(self.param_bytes, self.macs, self.cut_in_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, OpKind, OpNode};

    /// a(1MB,10macs) -> b(2MB,20) -> c(4MB,40), outputs 100B each.
    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let mut prev = None;
        for (i, (p, m)) in [(1u64 << 20, 10u64), (2 << 20, 20), (4 << 20, 40)]
            .iter()
            .enumerate()
        {
            let id = b.add_node(
                OpNode::new(format!("n{i}"), OpKind::Conv2d)
                    .with_params(*p)
                    .with_macs(*m)
                    .with_output(100),
            );
            if let Some(pv) = prev {
                b.add_edge(pv, id).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn stage_resources_aggregate_correctly() {
        let dag = chain3();
        let s = Schedule::new(vec![0, 0, 1], 2).unwrap();
        let m = CostModel::coral();
        let res = m.stage_resources(&dag, &s);
        assert_eq!(res[0].param_bytes, 3 << 20);
        assert_eq!(res[0].macs, 30);
        assert_eq!(res[0].cut_in_bytes, 0);
        assert_eq!(res[1].param_bytes, 4 << 20);
        assert_eq!(res[1].cut_in_bytes, 100, "edge b->c crosses the cut");
    }

    #[test]
    fn cache_absorbs_small_stages() {
        let m = CostModel::coral();
        // fits in 8 MiB: no spill term
        let fits = m.stage_cost(8 << 20, 0, 0);
        assert_eq!(fits, 0.0);
        let spills = m.stage_cost((8 << 20) + 1000, 0, 0);
        assert!(spills > 0.0);
    }

    #[test]
    fn objective_is_bottleneck() {
        let dag = chain3();
        let m = CostModel::coral();
        let s = Schedule::new(vec![0, 1, 2], 3).unwrap();
        let costs = m.stage_costs(&dag, &s);
        let obj = m.objective(&dag, &s);
        assert!((obj - costs.iter().cloned().fold(0.0, f64::max)).abs() < 1e-18);
    }

    #[test]
    fn peak_param_bytes_matches_max_stage() {
        let dag = chain3();
        let m = CostModel::coral();
        let s = Schedule::new(vec![0, 1, 1], 2).unwrap();
        assert_eq!(m.peak_stage_param_bytes(&dag, &s), 6 << 20);
    }

    #[test]
    fn lower_bound_never_exceeds_any_schedule() {
        let dag = chain3();
        let m = CostModel::coral();
        for stage_of in [vec![0, 0, 1], vec![0, 1, 1], vec![0, 0, 0]] {
            let k = stage_of.iter().max().unwrap() + 1;
            let s = Schedule::new(stage_of, k.max(2)).unwrap();
            assert!(m.lower_bound(&dag, 2) <= m.objective(&dag, &s) + 1e-12);
        }
    }

    #[test]
    fn segment_accumulator_matches_stage_resources() {
        let dag = chain3();
        let m = CostModel::coral();
        // segment = {b, c}, with a on an earlier stage
        let mut acc = SegmentAccumulator::new();
        acc.push(&dag, NodeId(1), |p| p == NodeId(0));
        acc.push(&dag, NodeId(2), |p| p == NodeId(0));
        let s = Schedule::new(vec![0, 1, 1], 2).unwrap();
        let res = m.stage_resources(&dag, &s)[1];
        assert_eq!(acc.param_bytes, res.param_bytes);
        assert_eq!(acc.macs, res.macs);
        assert_eq!(acc.cut_in_bytes, res.cut_in_bytes);
        assert!(
            (acc.cost(&m) - m.stage_cost(res.param_bytes, res.macs, res.cut_in_bytes)).abs()
                < 1e-18
        );
    }

    #[test]
    fn uncached_variant_streams_everything() {
        let m = CostModel::coral_uncached();
        assert!(m.stage_cost(1000, 0, 0) > 0.0);
    }
}
