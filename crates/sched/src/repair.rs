//! Post-inference processing (paper, Sec. III, last paragraph).
//!
//! The RL agent's raw output may violate domain constraints; before
//! deployment RESPECT "corrects the dependency violation by simply pushing
//! the involved node forward, which is a deterministic step with minimum
//! changes to the RL solution. Besides, Edge TPU hardware requires
//! children nodes of any node to be in the same pipeline, where the
//! post-inference procedure assigns these nodes to the earliest predicted
//! stage."
//!
//! [`repair`] implements both rules. The sibling rule used to be applied
//! as a hoist-then-fix alternation, but hoisting a child to an earlier
//! stage can undo the dependency validity established moments before, and
//! the bounded alternation could then stop at a state where re-running
//! `repair` produced a *different* schedule (non-idempotent legalization —
//! a real deployment hazard). The rule is therefore resolved structurally:
//! sibling groups are merged into co-location classes (a union-find over
//! "children of the same node"), each class starts at the earliest
//! predicted stage among its members, and class stages are pushed forward
//! monotonically until every cross-class edge flows forward. The
//! propagation only ever increases stages, so it converges in one round,
//! the result is dependency-valid by construction, and `repair` is
//! **idempotent** — `repair(repair(raw)) == repair(raw)` for every input
//! and every `max_rounds ≥ 1` (property-tested in `crates/sched/tests`).

use respect_graph::{topo, Dag};

use crate::schedule::{Schedule, ScheduleError};

/// Options for [`repair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// Enforce the Edge TPU rule that all children of a node share a
    /// stage (hoisted to the earliest predicted stage among them).
    pub sibling_stages: bool,
    /// Upper bound on sibling-resolution rounds. The class-based
    /// algorithm reaches its fixpoint in a single round, so every value
    /// ≥ 1 behaves identically; `0` skips sibling resolution entirely
    /// (dependency repair only), as it always has.
    pub max_rounds: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            sibling_stages: true,
            max_rounds: 8,
        }
    }
}

/// Legalizes a raw per-node stage prediction into a valid [`Schedule`].
///
/// Stages are first clamped into `0..num_stages`; then dependency
/// violations are fixed by pushing nodes forward in topological order,
/// optionally alternating with the sibling co-location rule.
///
/// # Errors
///
/// Returns [`ScheduleError::NoStages`] when `num_stages == 0` and
/// [`ScheduleError::LengthMismatch`] when `raw` has the wrong length.
pub fn repair(
    dag: &Dag,
    raw: &[usize],
    num_stages: usize,
    config: RepairConfig,
) -> Result<Schedule, ScheduleError> {
    if num_stages == 0 {
        return Err(ScheduleError::NoStages);
    }
    if raw.len() != dag.len() {
        return Err(ScheduleError::LengthMismatch {
            got: raw.len(),
            expected: dag.len(),
        });
    }
    let mut stage: Vec<usize> = raw.iter().map(|&s| s.min(num_stages - 1)).collect();
    let order = topo::topo_order(dag);

    let dependency_pass = |stage: &mut [usize]| {
        for &v in &order {
            let min = dag
                .preds(v)
                .iter()
                .map(|&p| stage[p.index()])
                .max()
                .unwrap_or(0);
            if stage[v.index()] < min {
                stage[v.index()] = min;
            }
        }
    };

    if config.sibling_stages && config.max_rounds > 0 {
        // co-location classes: children of any node with several children
        // must share a stage, and overlapping sibling sets chain together
        let mut parent: Vec<usize> = (0..dag.len()).collect();
        for u in dag.node_ids() {
            let children = dag.succs(u);
            if children.len() > 1 {
                let root = find(&mut parent, children[0].index());
                for &c in &children[1..] {
                    let r = find(&mut parent, c.index());
                    parent[r] = root;
                }
            }
        }
        // each class starts at the earliest predicted stage of any member
        // (the paper's rule), then classes are pushed forward until every
        // cross-class edge flows forward — monotone, so it terminates, and
        // it never revisits a settled constraint (the old alternation
        // could hoist a child back below its parents)
        let mut class_stage = vec![usize::MAX; dag.len()];
        for (v, &s) in stage.iter().enumerate() {
            let r = find(&mut parent, v);
            class_stage[r] = class_stage[r].min(s);
        }
        loop {
            let mut changed = false;
            for &v in &order {
                let rv = find(&mut parent, v.index());
                for &p in dag.preds(v) {
                    let rp = find(&mut parent, p.index());
                    if class_stage[rp] > class_stage[rv] {
                        class_stage[rv] = class_stage[rp];
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (v, s) in stage.iter_mut().enumerate() {
            *s = class_stage[find(&mut parent, v)];
        }
    }
    // final guarantee: dependency-valid (a no-op after class propagation)
    dependency_pass(&mut stage);
    let schedule = Schedule::new(stage, num_stages)?;
    debug_assert!(schedule.is_valid(dag));
    Ok(schedule)
}

/// Union-find root lookup with path compression.
fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, NodeId, OpKind, OpNode, SyntheticConfig, SyntheticSampler};

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|i| b.add_node(OpNode::new(format!("n{i}"), OpKind::Conv2d)))
            .collect();
        b.add_edge(ids[0], ids[1]).unwrap();
        b.add_edge(ids[0], ids[2]).unwrap();
        b.add_edge(ids[1], ids[3]).unwrap();
        b.add_edge(ids[2], ids[3]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pushes_violating_nodes_forward() {
        let dag = diamond();
        // node 3 predicted before its parents
        let s = repair(&dag, &[1, 1, 1, 0], 3, RepairConfig::default()).unwrap();
        assert!(s.is_valid(&dag));
        assert!(s.stage(NodeId(3)) >= 1);
    }

    #[test]
    fn valid_input_with_siblings_colocated_is_untouched() {
        let dag = diamond();
        let raw = vec![0, 1, 1, 2];
        let s = repair(&dag, &raw, 3, RepairConfig::default()).unwrap();
        assert_eq!(s.stage_of(), raw.as_slice());
    }

    #[test]
    fn sibling_rule_hoists_children_to_earliest_stage() {
        let dag = diamond();
        // children of n0 predicted on stages 2 and 1 -> both to 1
        let s = repair(&dag, &[0, 2, 1, 2], 3, RepairConfig::default()).unwrap();
        assert_eq!(s.stage(NodeId(1)), s.stage(NodeId(2)));
        assert_eq!(s.stage(NodeId(1)), 1);
        assert!(s.is_valid(&dag));
    }

    #[test]
    fn sibling_rule_can_be_disabled() {
        let dag = diamond();
        let cfg = RepairConfig {
            sibling_stages: false,
            ..RepairConfig::default()
        };
        let s = repair(&dag, &[0, 2, 1, 2], 3, cfg).unwrap();
        assert_eq!(s.stage(NodeId(1)), 2);
        assert_eq!(s.stage(NodeId(2)), 1);
    }

    #[test]
    fn zero_rounds_skips_sibling_resolution() {
        // max_rounds = 0 has always meant "dependency repair only"
        let dag = diamond();
        let cfg = RepairConfig {
            sibling_stages: true,
            max_rounds: 0,
        };
        let s = repair(&dag, &[0, 2, 1, 2], 3, cfg).unwrap();
        assert_eq!(s.stage(NodeId(1)), 2);
        assert_eq!(s.stage(NodeId(2)), 1);
        assert!(s.is_valid(&dag));
    }

    #[test]
    fn clamps_out_of_range_stages() {
        let dag = diamond();
        let s = repair(&dag, &[9, 9, 9, 9], 3, RepairConfig::default()).unwrap();
        assert!(s.stage_of().iter().all(|&x| x == 2));
    }

    #[test]
    fn rejects_wrong_length_and_zero_stages() {
        let dag = diamond();
        assert!(matches!(
            repair(&dag, &[0, 0], 2, RepairConfig::default()),
            Err(ScheduleError::LengthMismatch { .. })
        ));
        assert!(matches!(
            repair(&dag, &[0; 4], 0, RepairConfig::default()),
            Err(ScheduleError::NoStages)
        ));
    }

    #[test]
    fn always_valid_on_random_predictions() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(4), 13);
        let dag = sampler.sample();
        // adversarial raw predictions: reversed stages
        for k in [2, 4, 6] {
            let raw: Vec<usize> = (0..dag.len()).map(|i| (dag.len() - i) % k).collect();
            let s = repair(&dag, &raw, k, RepairConfig::default()).unwrap();
            assert!(s.is_valid(&dag), "k={k}");
        }
    }
}
