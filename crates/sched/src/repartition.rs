//! Online re-partitioning: deterministic local refinement of an
//! *existing* schedule.
//!
//! The offline schedulers ([`crate::exact`], [`crate::greedy`],
//! [`crate::anneal`]) answer "how should this model be partitioned?"
//! from scratch. A serving runtime asks a different question mid-flight:
//! "the deployed partition's bottleneck has drifted — what is the best
//! *nearby* partition I can hot-swap to?" [`refine`] answers it with a
//! deterministic best-improvement local search over single-node stage
//! moves, costed by the `O(deg(v) + k)`-per-move
//! [`IncrementalEvaluator`] — cheap enough to run between requests.
//!
//! Guarantees (property-tested in `crates/sched/tests`):
//!
//! * the result is **never worse** than the input under `model`;
//! * validity is preserved: every node stays inside its dependency
//!   window `[max stage(pred), min stage(succ)]`, so no edge ever flows
//!   backwards and the stage count is unchanged;
//! * fully deterministic (fixed node visit order, strict-improvement
//!   acceptance, no randomness);
//! * at convergence the result is a fixpoint: running [`refine`] again
//!   returns the identical schedule with `moves == 0`.

use respect_graph::{Dag, NodeId};

use crate::cost::CostModel;
use crate::incremental::IncrementalEvaluator;
use crate::schedule::Schedule;

/// Observer hook for [`refine_with`]: one callback per completed
/// refinement pass. Monomorphized, so the no-op observer used by
/// [`refine`] compiles to nothing. The serving runtime's probe layer
/// (`respect_tpu::probe`) adapts this into its structured event stream;
/// keeping the trait here — below the simulator in the crate graph —
/// lets the refiner stay dependency-free while still being observable.
pub trait RefineObserver {
    /// Called after pass `pass` (0-based) with the moves it accepted
    /// and the bottleneck objective it reached.
    fn on_pass(&mut self, pass: usize, moves_in_pass: usize, objective: f64);
}

/// The do-nothing observer behind [`refine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentRefine;

impl RefineObserver for SilentRefine {
    #[inline(always)]
    fn on_pass(&mut self, _pass: usize, _moves_in_pass: usize, _objective: f64) {}
}

impl<F: FnMut(usize, usize, f64)> RefineObserver for F {
    fn on_pass(&mut self, pass: usize, moves_in_pass: usize, objective: f64) {
        self(pass, moves_in_pass, objective);
    }
}

/// Result of one [`refine`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RepartitionOutcome {
    /// The refined schedule (same stage count as the input).
    pub schedule: Schedule,
    /// Bottleneck objective of the refined schedule under the model.
    pub objective: f64,
    /// Accepted single-node moves.
    pub moves: usize,
    /// Whether the search converged (a full pass found no improving
    /// move) within `max_passes`.
    pub converged: bool,
}

/// Refines `from` by deterministic best-improvement single-node moves.
///
/// Each pass visits every node in id order; for each node it evaluates
/// every stage in the node's dependency window and applies the move with
/// the lowest bottleneck objective if it strictly improves on the
/// current one. Passes repeat until a full pass makes no move or
/// `max_passes` is exhausted.
///
/// `from` must be valid for `dag` (stage count and dependency order);
/// this is the caller's contract, as with the evaluator itself.
pub fn refine(
    dag: &Dag,
    model: CostModel,
    from: &Schedule,
    max_passes: usize,
) -> RepartitionOutcome {
    refine_with(dag, model, from, max_passes, &mut SilentRefine)
}

/// [`refine`] with a [`RefineObserver`] reporting per-pass progress
/// (accepted moves and the objective reached). `refine_with(..,
/// &mut SilentRefine)` is exactly [`refine`].
pub fn refine_with<O: RefineObserver>(
    dag: &Dag,
    model: CostModel,
    from: &Schedule,
    max_passes: usize,
    observer: &mut O,
) -> RepartitionOutcome {
    let mut eval = IncrementalEvaluator::new(dag, model, from);
    let k = eval.num_stages();
    let mut score = profile(eval.stage_costs());
    let mut moves = 0usize;
    let mut converged = false;
    for pass in 0..max_passes {
        let mut improved = false;
        let moves_before = moves;
        for i in 0..dag.len() {
            let v = NodeId(i as u32);
            // dependency window: earliest and latest stage v may occupy
            let lo = dag
                .preds(v)
                .iter()
                .map(|&p| eval.stage(p))
                .max()
                .unwrap_or(0);
            let hi = dag
                .succs(v)
                .iter()
                .map(|&s| eval.stage(s))
                .min()
                .unwrap_or(k - 1);
            if lo >= hi {
                continue;
            }
            let cur = eval.stage(v);
            let mut best_stage = cur;
            let mut best_score = score.clone();
            for s in lo..=hi {
                if s == cur {
                    continue;
                }
                let prev = eval.move_node(v, s);
                let cand = profile(eval.stage_costs());
                if lex_less(&cand, &best_score) {
                    best_score = cand;
                    best_stage = s;
                }
                eval.move_node(v, prev);
            }
            if best_stage != cur {
                eval.move_node(v, best_stage);
                score = best_score;
                moves += 1;
                improved = true;
            }
        }
        observer.on_pass(pass, moves - moves_before, eval.bottleneck());
        if !improved {
            converged = true;
            break;
        }
    }
    RepartitionOutcome {
        schedule: eval.to_schedule(),
        objective: eval.bottleneck(),
        moves,
        converged,
    }
}

/// Stage costs sorted descending — the potential the search descends.
/// Comparing the whole sorted profile (not just its head) lets mass
/// drain out of *near*-bottleneck stages, escaping the plateaus a pure
/// `max` objective gets stuck on, while still strictly decreasing a
/// well-founded potential every accepted move (termination).
fn profile(costs: &[f64]) -> Vec<f64> {
    let mut p = costs.to_vec();
    p.sort_by(|a, b| b.total_cmp(a));
    p
}

/// Strict lexicographic `total_cmp` order on equal-length profiles.
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced::ParamBalanced;
    use crate::Scheduler;
    use respect_graph::models;

    #[test]
    fn never_worsens_and_stays_valid_on_the_model_zoo() {
        let model = CostModel::coral();
        for (name, dag) in models::table1() {
            for k in [2usize, 4, 6] {
                let from = ParamBalanced::new().schedule(&dag, k).unwrap();
                let before = model.objective(&dag, &from);
                let out = refine(&dag, model, &from, 16);
                assert!(out.schedule.is_valid(&dag), "{name}@{k}");
                assert_eq!(out.schedule.num_stages(), k, "{name}@{k}");
                assert!(
                    out.objective <= before,
                    "{name}@{k}: {} worse than {before}",
                    out.objective
                );
                assert_eq!(
                    out.objective.to_bits(),
                    model.objective(&dag, &out.schedule).to_bits(),
                    "{name}@{k}: reported objective drifted from the schedule"
                );
            }
        }
    }

    #[test]
    fn converged_refinement_is_a_fixpoint() {
        let model = CostModel::coral();
        let dag = models::resnet101();
        let from = ParamBalanced::new().schedule(&dag, 4).unwrap();
        let once = refine(&dag, model, &from, 64);
        assert!(once.converged, "64 passes converge on resnet101@4");
        let twice = refine(&dag, model, &once.schedule, 64);
        assert_eq!(twice.schedule, once.schedule);
        assert_eq!(twice.moves, 0);
        assert!(twice.converged);
    }

    #[test]
    fn recovers_most_of_the_balanced_to_refined_gap() {
        // The parameter-balancing heuristic ignores MACs and
        // communication; local moves must close a real part of its gap.
        // Constants match `DeviceSpec::coral().cost_model()` (sustained
        // MAC rate), the model the serving runtime re-partitions under.
        let model = CostModel {
            sec_per_mac: 1.0 / 2.0e11,
            sec_per_byte: 1.0 / 320.0e6,
            cache_bytes: 8 << 20,
        };
        let dag = models::resnet101v2();
        let from = ParamBalanced::new().schedule(&dag, 4).unwrap();
        let before = model.objective(&dag, &from);
        let out = refine(&dag, model, &from, 64);
        assert!(
            out.objective < 0.85 * before,
            "refine {before} -> {} gained under 15%",
            out.objective
        );
        assert!(out.moves > 0);
    }

    #[test]
    fn observer_sees_every_pass_and_changes_nothing() {
        let model = CostModel::coral();
        let dag = models::resnet101v2();
        let from = ParamBalanced::new().schedule(&dag, 4).unwrap();
        let silent = refine(&dag, model, &from, 16);
        let mut passes: Vec<(usize, usize, f64)> = Vec::new();
        let mut log = |pass: usize, moves: usize, obj: f64| passes.push((pass, moves, obj));
        let observed = refine_with(&dag, model, &from, 16, &mut log);
        assert_eq!(observed, silent, "observation never changes the search");
        assert!(!passes.is_empty());
        assert_eq!(passes.iter().map(|p| p.1).sum::<usize>(), observed.moves);
        assert_eq!(
            passes.last().unwrap().2.to_bits(),
            observed.objective.to_bits()
        );
        for (i, p) in passes.iter().enumerate() {
            assert_eq!(p.0, i, "passes are reported in order");
        }
    }

    #[test]
    fn zero_passes_returns_the_input() {
        let model = CostModel::coral();
        let dag = models::xception();
        let from = ParamBalanced::new().schedule(&dag, 5).unwrap();
        let out = refine(&dag, model, &from, 0);
        assert_eq!(out.schedule, from);
        assert_eq!(out.moves, 0);
        assert!(!out.converged);
    }
}
