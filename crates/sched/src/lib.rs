//! Scheduling substrate for the RESPECT reproduction.
//!
//! The paper frames DNN deployment on an `n`-stage pipelined Edge TPU
//! system as resource-constrained scheduling (Sec. II): assign every node
//! of a computational DAG to a pipeline stage such that dataflow only
//! crosses stage boundaries forward, minimizing a memory- and
//! communication-aware bottleneck cost. This crate provides every
//! scheduling algorithm the paper discusses or compares against:
//!
//! * [`Schedule`] — validated stage assignments;
//! * [`CostModel`] — the per-stage latency model (compute + off-cache
//!   parameter streaming + cut communication);
//! * [`pack`] — the paper's `ρ`: optimal packing of a *fixed* node
//!   sequence into `n` contiguous segments (dynamic programming);
//! * [`balanced`] — the commercial Edge TPU compiler's parameter-balancing
//!   partition heuristic (baseline 1);
//! * [`exact`] — a structure-aware exact branch-and-bound over
//!   order-ideal chains (fast, provably optimal);
//! * [`ilp`] — a generic ILP-style branch-and-bound whose solving-time
//!   profile reproduces the paper's CPLEX baseline (baseline 2);
//! * [`greedy`], [`anneal`] — cost-aware list scheduling and simulated
//!   annealing (the "iterative metaheuristics" of Sec. II);
//! * [`incremental`] — `O(deg(v) + k)` cost re-evaluation under
//!   single-node stage moves, the engine behind the local searches;
//! * [`hu`], [`force`] — the classic RCS algorithms cited in Sec. II
//!   (Hu's algorithm, force-directed scheduling);
//! * [`repartition`] — deterministic local refinement of a *deployed*
//!   schedule, the hot-swap entry point of the online serving runtime;
//! * [`repair`] — the paper's post-inference processing;
//! * [`brute`] — exhaustive optimum for small graphs, used to certify
//!   [`exact`] in tests;
//! * [`registry`] — every scheduler above behind a stable string name
//!   (`"param-balanced"`, `"exact"`, ...), extensible by higher layers.
//!
//! # Example
//!
//! ```
//! use respect_graph::models;
//! use respect_sched::{exact::ExactScheduler, CostModel, Scheduler};
//!
//! # fn main() -> Result<(), respect_sched::ScheduleError> {
//! let dag = models::xception();
//! let scheduler = ExactScheduler::new(CostModel::coral());
//! let schedule = scheduler.schedule(&dag, 4)?;
//! assert!(schedule.is_valid(&dag));
//! # Ok(())
//! # }
//! ```

pub mod anneal;
pub mod balanced;
pub mod brute;
pub mod cost;
pub mod exact;
pub mod force;
pub mod greedy;
pub mod hu;
pub mod ilp;
pub mod incremental;
pub mod order;
pub mod pack;
pub mod registry;
pub mod repair;
pub mod repartition;
pub mod schedule;

pub use cost::CostModel;
pub use incremental::IncrementalEvaluator;
pub use schedule::{Schedule, ScheduleError};

use respect_graph::Dag;

/// A pipeline scheduler: maps a computational graph onto `num_stages`
/// Edge TPU pipeline stages.
pub trait Scheduler {
    /// Short human-readable name for reports ("EdgeTPU compiler", "ILP",
    /// "RESPECT", ...).
    fn name(&self) -> &str;

    /// Computes a stage assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] when no valid schedule exists for the
    /// requested stage count (e.g. zero stages).
    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError>;
}
