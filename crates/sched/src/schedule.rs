//! Pipeline schedules and their validity rules.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use respect_graph::{Dag, NodeId};

/// Errors produced while constructing or validating a [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// `stage_of` does not have one entry per node.
    LengthMismatch {
        /// Entries provided.
        got: usize,
        /// Nodes in the graph.
        expected: usize,
    },
    /// A node was assigned to a stage `>= num_stages`.
    StageOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Assigned stage.
        stage: usize,
        /// Stage count.
        num_stages: usize,
    },
    /// An edge flows backwards across the pipeline.
    DependencyViolation {
        /// Producer node.
        from: NodeId,
        /// Consumer node scheduled on an earlier stage.
        to: NodeId,
    },
    /// A schedule with zero stages was requested.
    NoStages,
    /// The solver could not produce a schedule (e.g. budget exhausted).
    SolverFailed(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::LengthMismatch { got, expected } => {
                write!(f, "schedule has {got} entries for {expected} nodes")
            }
            ScheduleError::StageOutOfRange {
                node,
                stage,
                num_stages,
            } => write!(f, "node {node} assigned to stage {stage} of {num_stages}"),
            ScheduleError::DependencyViolation { from, to } => {
                write!(f, "edge {from} -> {to} flows backwards across stages")
            }
            ScheduleError::NoStages => write!(f, "pipeline must have at least one stage"),
            ScheduleError::SolverFailed(msg) => write!(f, "solver failed: {msg}"),
        }
    }
}

impl Error for ScheduleError {}

/// An assignment of every graph node to one pipeline stage.
///
/// Invariant (checked by [`Schedule::new`]): every stage index is in
/// `0..num_stages`. Dependency feasibility is graph-relative and checked
/// by [`Schedule::validate`] / [`Schedule::is_valid`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    stage_of: Vec<usize>,
    num_stages: usize,
}

impl Schedule {
    /// Creates a schedule from raw stage indices.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoStages`] or
    /// [`ScheduleError::StageOutOfRange`].
    pub fn new(stage_of: Vec<usize>, num_stages: usize) -> Result<Self, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        for (i, &s) in stage_of.iter().enumerate() {
            if s >= num_stages {
                return Err(ScheduleError::StageOutOfRange {
                    node: NodeId(i as u32),
                    stage: s,
                    num_stages,
                });
            }
        }
        Ok(Schedule {
            stage_of,
            num_stages,
        })
    }

    /// Builds the schedule induced by a node sequence and cut positions:
    /// stage `k` executes `order[cuts[k-1]..cuts[k]]` (with implicit first
    /// cut 0 and last cut `order.len()`).
    ///
    /// # Panics
    ///
    /// Panics if `cuts` is not nondecreasing or exceeds `order.len()`.
    pub fn from_cuts(order: &[NodeId], cuts: &[usize], num_stages: usize) -> Self {
        assert_eq!(cuts.len() + 1, num_stages, "cuts vs stage count");
        let mut stage_of = vec![0usize; order.len()];
        let mut prev = 0usize;
        for (k, &c) in cuts.iter().chain(std::iter::once(&order.len())).enumerate() {
            assert!(c >= prev && c <= order.len(), "cuts must be nondecreasing");
            for &v in &order[prev..c] {
                stage_of[v.index()] = k;
            }
            prev = c;
        }
        Schedule {
            stage_of,
            num_stages,
        }
    }

    /// Stage of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range for this schedule.
    #[inline]
    pub fn stage(&self, node: NodeId) -> usize {
        self.stage_of[node.index()]
    }

    /// The raw stage-per-node vector, indexed by node id.
    #[inline]
    pub fn stage_of(&self) -> &[usize] {
        &self.stage_of
    }

    /// Number of pipeline stages.
    #[inline]
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Nodes per stage, each in ascending node-id order.
    pub fn stage_sets(&self) -> Vec<Vec<NodeId>> {
        let mut sets = vec![Vec::new(); self.num_stages];
        for (i, &s) in self.stage_of.iter().enumerate() {
            sets[s].push(NodeId(i as u32));
        }
        sets
    }

    /// Checks the schedule against `dag`: one entry per node and no edge
    /// flowing backwards (`stage(u) <= stage(v)` for every edge).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, dag: &Dag) -> Result<(), ScheduleError> {
        if self.stage_of.len() != dag.len() {
            return Err(ScheduleError::LengthMismatch {
                got: self.stage_of.len(),
                expected: dag.len(),
            });
        }
        for (u, v) in dag.edges() {
            if self.stage_of[u.index()] > self.stage_of[v.index()] {
                return Err(ScheduleError::DependencyViolation { from: u, to: v });
            }
        }
        Ok(())
    }

    /// Whether [`validate`](Schedule::validate) passes.
    pub fn is_valid(&self, dag: &Dag) -> bool {
        self.validate(dag).is_ok()
    }

    /// A dependency-respecting execution sequence consistent with this
    /// schedule: nodes ordered by (stage, topological position).
    pub fn to_sequence(&self, dag: &Dag) -> Vec<NodeId> {
        let mut order = respect_graph::topo::topo_order(dag);
        let pos: Vec<usize> = {
            let mut p = vec![0; dag.len()];
            for (i, &v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        order.sort_by_key(|&v| (self.stage_of[v.index()], pos[v.index()]));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, OpKind, OpNode};

    fn chain(n: usize) -> Dag {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_node(OpNode::new(format!("c{i}"), OpKind::Conv2d)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn new_validates_ranges() {
        assert!(Schedule::new(vec![0, 1], 2).is_ok());
        assert_eq!(
            Schedule::new(vec![0, 2], 2).unwrap_err(),
            ScheduleError::StageOutOfRange {
                node: NodeId(1),
                stage: 2,
                num_stages: 2
            }
        );
        assert_eq!(
            Schedule::new(vec![], 0).unwrap_err(),
            ScheduleError::NoStages
        );
    }

    #[test]
    fn validate_catches_backward_edges() {
        let dag = chain(3);
        let bad = Schedule::new(vec![1, 0, 1], 2).unwrap();
        assert_eq!(
            bad.validate(&dag).unwrap_err(),
            ScheduleError::DependencyViolation {
                from: NodeId(0),
                to: NodeId(1)
            }
        );
        let good = Schedule::new(vec![0, 0, 1], 2).unwrap();
        assert!(good.is_valid(&dag));
    }

    #[test]
    fn validate_catches_length_mismatch() {
        let dag = chain(3);
        let s = Schedule::new(vec![0, 0], 1).unwrap();
        assert!(matches!(
            s.validate(&dag).unwrap_err(),
            ScheduleError::LengthMismatch {
                got: 2,
                expected: 3
            }
        ));
    }

    #[test]
    fn from_cuts_assigns_segments() {
        let dag = chain(5);
        let order: Vec<_> = dag.node_ids().collect();
        let s = Schedule::from_cuts(&order, &[2, 3], 3);
        assert_eq!(s.stage_of(), &[0, 0, 1, 2, 2]);
        assert!(s.is_valid(&dag));
        // empty middle stage is allowed
        let s2 = Schedule::from_cuts(&order, &[2, 2], 3);
        assert_eq!(s2.stage_of(), &[0, 0, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn from_cuts_rejects_decreasing() {
        let order: Vec<_> = (0..4u32).map(NodeId).collect();
        let _ = Schedule::from_cuts(&order, &[3, 1], 3);
    }

    #[test]
    fn stage_sets_partition_nodes() {
        let s = Schedule::new(vec![1, 0, 1], 2).unwrap();
        let sets = s.stage_sets();
        assert_eq!(sets[0], vec![NodeId(1)]);
        assert_eq!(sets[1], vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn to_sequence_is_topological_and_stage_sorted() {
        let dag = chain(4);
        let s = Schedule::new(vec![0, 0, 1, 1], 2).unwrap();
        let seq = s.to_sequence(&dag);
        assert!(respect_graph::topo::is_topological_order(&dag, &seq));
        let stages: Vec<_> = seq.iter().map(|&v| s.stage(v)).collect();
        let mut sorted = stages.clone();
        sorted.sort_unstable();
        assert_eq!(stages, sorted);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ScheduleError::DependencyViolation {
            from: NodeId(1),
            to: NodeId(0),
        };
        assert!(e.to_string().contains("backwards"));
    }
}
