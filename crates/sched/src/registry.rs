//! Scheduler registry: every partitioner in this crate behind a stable
//! string name.
//!
//! The paper compares many schedulers; downstream layers (the
//! `respect::deploy` facade, the `reproduce` CLI, benches) want to pick
//! one by name instead of hand-wiring each concrete type. The registry
//! maps stable names to constructors parameterized by [`BuildOptions`]
//! (cost model, seed, iteration/time budgets):
//!
//! | name             | scheduler                                  |
//! |------------------|--------------------------------------------|
//! | `"param-balanced"` | [`balanced::ParamBalanced`]              |
//! | `"op-balanced"`  | [`balanced::OpBalanced`]                   |
//! | `"greedy"`       | [`greedy::GreedyCost`]                     |
//! | `"anneal"`       | [`anneal::Annealing`]                      |
//! | `"ilp"`          | [`ilp::IlpScheduler`]                      |
//! | `"exact"`        | [`exact::ExactScheduler`]                  |
//! | `"brute"`        | [`brute::BruteForce`]                      |
//! | `"hu"`           | [`hu::HuList`]                             |
//! | `"force"`        | [`force::ForceDirected`]                   |
//!
//! Layers above this crate extend a [`Registry`] with their own entries
//! via [`Registry::register`] (the facade adds `"respect"`, the RL
//! scheduler, and `"profiling"`, the device-aware partitioner — neither
//! can live here without inverting the crate graph).
//!
//! # Example
//!
//! ```
//! use respect_graph::models;
//! use respect_sched::registry::{self, BuildOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scheduler = registry::build("greedy", &BuildOptions::default())?;
//! let schedule = scheduler.schedule(&models::xception(), 4)?;
//! assert!(schedule.is_valid(&models::xception()));
//! # Ok(())
//! # }
//! ```
//!
//! [`balanced::ParamBalanced`]: crate::balanced::ParamBalanced
//! [`balanced::OpBalanced`]: crate::balanced::OpBalanced
//! [`greedy::GreedyCost`]: crate::greedy::GreedyCost
//! [`anneal::Annealing`]: crate::anneal::Annealing
//! [`ilp::IlpScheduler`]: crate::ilp::IlpScheduler
//! [`exact::ExactScheduler`]: crate::exact::ExactScheduler
//! [`brute::BruteForce`]: crate::brute::BruteForce
//! [`hu::HuList`]: crate::hu::HuList
//! [`force::ForceDirected`]: crate::force::ForceDirected

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use crate::anneal::Annealing;
use crate::balanced::{OpBalanced, ParamBalanced};
use crate::brute::BruteForce;
use crate::cost::CostModel;
use crate::exact::ExactScheduler;
use crate::force::ForceDirected;
use crate::greedy::GreedyCost;
use crate::hu::HuList;
use crate::ilp::IlpScheduler;
use crate::Scheduler;

/// Constructor hooks shared by every registry entry.
///
/// Entries read only the knobs that apply to them: `"anneal"` reads the
/// seed and iteration budget, `"exact"`/`"ilp"` read the time budget,
/// `"brute"` reads the node cap, `"force"` the latency slack, and the
/// cost-blind balancers read nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct BuildOptions {
    /// Cost model for every cost-aware scheduler.
    pub cost_model: CostModel,
    /// RNG seed for stochastic schedulers (`"anneal"`).
    pub seed: u64,
    /// Move/iteration budget for iterative schedulers (`"anneal"`).
    pub iterations: Option<usize>,
    /// Wall-clock budget for anytime solvers (`"exact"`, `"ilp"`).
    pub time_budget: Option<Duration>,
    /// Node cap for the exhaustive solver (`"brute"`).
    pub brute_max_nodes: Option<usize>,
    /// Latency slack for force-directed scheduling (`"force"`).
    pub force_slack: Option<usize>,
}

impl BuildOptions {
    /// Defaults: Coral cost model, the schedulers' own seeds/budgets.
    pub fn new() -> Self {
        BuildOptions {
            cost_model: CostModel::default(),
            seed: 0x5eed,
            iterations: None,
            time_budget: None,
            brute_max_nodes: None,
            force_slack: None,
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration budget for iterative schedulers.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Sets the wall-clock budget for anytime solvers.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the exhaustive solver's node cap.
    pub fn with_brute_max_nodes(mut self, max_nodes: usize) -> Self {
        self.brute_max_nodes = Some(max_nodes);
        self
    }

    /// Sets the force-directed latency slack.
    pub fn with_force_slack(mut self, slack: usize) -> Self {
        self.force_slack = Some(slack);
        self
    }
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Errors produced while resolving a registry name.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// The requested name is not registered.
    UnknownScheduler {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, sorted.
        available: Vec<String>,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownScheduler { name, available } => write!(
                f,
                "unknown scheduler {name:?}; available: {}",
                available.join(", ")
            ),
        }
    }
}

impl Error for RegistryError {}

type BuilderFn = Box<dyn Fn(&BuildOptions) -> Box<dyn Scheduler> + Send + Sync>;

/// A name → scheduler-constructor table.
///
/// [`Registry::builtin`] covers every algorithm in this crate; layers
/// above extend it with [`Registry::register`]. Names enumerate in
/// sorted order and resolution is exact (case-sensitive).
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, BuilderFn>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        Registry::default()
    }

    /// The registry of every scheduler in this crate (9 entries; see the
    /// [module docs](self) for the name table).
    #[must_use]
    pub fn builtin() -> Self {
        let mut r = Registry::empty();
        r.register("param-balanced", |_| Box::new(ParamBalanced::new()));
        r.register("op-balanced", |_| Box::new(OpBalanced::new()));
        r.register("greedy", |o| Box::new(GreedyCost::new(o.cost_model)));
        r.register("anneal", |o| {
            let mut a = Annealing::new(o.cost_model).with_seed(o.seed);
            if let Some(iters) = o.iterations {
                a = a.with_iterations(iters);
            }
            Box::new(a)
        });
        r.register("ilp", |o| {
            let mut s = IlpScheduler::new(o.cost_model);
            if let Some(b) = o.time_budget {
                s = s.with_time_budget(b);
            }
            Box::new(s)
        });
        r.register("exact", |o| {
            let mut s = ExactScheduler::new(o.cost_model);
            if let Some(b) = o.time_budget {
                s = s.with_time_budget(b);
            }
            Box::new(s)
        });
        r.register("brute", |o| {
            let mut s = BruteForce::new(o.cost_model);
            if let Some(cap) = o.brute_max_nodes {
                s = s.with_max_nodes(cap);
            }
            Box::new(s)
        });
        r.register("hu", |o| Box::new(HuList::new(o.cost_model)));
        r.register("force", |o| {
            let mut s = ForceDirected::new(o.cost_model);
            if let Some(slack) = o.force_slack {
                s = s.with_slack(slack);
            }
            Box::new(s)
        });
        r
    }

    /// Registers (or replaces) an entry.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&BuildOptions) -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) {
        self.entries.insert(name.into(), Box::new(f));
    }

    /// Every registered name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Constructs the scheduler registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownScheduler`] (listing every
    /// available name) when `name` is not registered.
    pub fn build(
        &self,
        name: &str,
        options: &BuildOptions,
    ) -> Result<Box<dyn Scheduler>, RegistryError> {
        match self.entries.get(name) {
            Some(f) => Ok(f(options)),
            None => Err(RegistryError::UnknownScheduler {
                name: name.to_string(),
                available: self.names(),
            }),
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

/// Every name in the builtin registry, sorted (convenience over
/// [`Registry::builtin`]).
pub fn names() -> Vec<String> {
    Registry::builtin().names()
}

/// Constructs a builtin scheduler by name (convenience over
/// [`Registry::builtin`]).
///
/// # Errors
///
/// Returns [`RegistryError::UnknownScheduler`] for unregistered names.
pub fn build(name: &str, options: &BuildOptions) -> Result<Box<dyn Scheduler>, RegistryError> {
    Registry::builtin().build(name, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, OpKind, OpNode};

    fn small_dag() -> respect_graph::Dag {
        let mut b = DagBuilder::new();
        let mut prev = None;
        for i in 0..8u64 {
            let id = b.add_node(
                OpNode::new(format!("n{i}"), OpKind::Conv2d)
                    .with_params(1000 + i * 100)
                    .with_macs(500)
                    .with_output(32),
            );
            if let Some(p) = prev {
                b.add_edge(p, id).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn builtin_lists_all_nine_names_sorted() {
        let names = names();
        assert_eq!(
            names,
            vec![
                "anneal",
                "brute",
                "exact",
                "force",
                "greedy",
                "hu",
                "ilp",
                "op-balanced",
                "param-balanced",
            ]
        );
    }

    #[test]
    fn every_builtin_schedules_the_small_dag() {
        let dag = small_dag();
        let opts = BuildOptions::default();
        for name in names() {
            let s = build(&name, &opts).unwrap().schedule(&dag, 3).unwrap();
            assert!(s.is_valid(&dag), "{name}");
            assert_eq!(s.num_stages(), 3, "{name}");
        }
    }

    #[test]
    fn unknown_name_is_a_structured_error() {
        let Err(err) = build("cplex", &BuildOptions::default()) else {
            panic!("unknown name must not resolve");
        };
        match &err {
            RegistryError::UnknownScheduler { name, available } => {
                assert_eq!(name, "cplex");
                assert_eq!(available.len(), 9);
            }
        }
        let msg = err.to_string();
        assert!(
            msg.contains("cplex") && msg.contains("param-balanced"),
            "{msg}"
        );
    }

    #[test]
    fn options_thread_through_to_the_schedulers() {
        let dag = small_dag();
        let a = build(
            "anneal",
            &BuildOptions::default().with_seed(7).with_iterations(200),
        )
        .unwrap()
        .schedule(&dag, 3)
        .unwrap();
        let b = build(
            "anneal",
            &BuildOptions::default().with_seed(7).with_iterations(200),
        )
        .unwrap()
        .schedule(&dag, 3)
        .unwrap();
        assert_eq!(a, b, "same seed and budget must reproduce bitwise");
        // the brute cap is honored
        let capped = build("brute", &BuildOptions::default().with_brute_max_nodes(4)).unwrap();
        assert!(capped.schedule(&dag, 2).is_err(), "8 nodes > cap 4");
    }

    #[test]
    fn custom_registration_and_replacement() {
        let mut r = Registry::builtin();
        r.register("mine", |_| Box::new(OpBalanced::new()));
        assert!(r.contains("mine"));
        assert_eq!(r.names().len(), 10);
        let s = r.build("mine", &BuildOptions::default()).unwrap();
        assert_eq!(s.name(), "EdgeTPU compiler (op count)");
    }
}
