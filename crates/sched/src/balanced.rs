//! The commercial Edge TPU compiler's partition heuristics.
//!
//! The paper-era `edgetpu_compiler --num_segments` cuts the flattened
//! operator sequence into segments with **equal operator counts**
//! ([`OpBalanced`]); the later "profiling-based partitioner" balances by
//! **parameter size** ([`ParamBalanced`]). Both are blind to
//! communication, compute balance, and the 8 MiB cache threshold — the
//! paper reports that such heuristics degrade as the stage count grows
//! (Sec. IV-A), which is exactly what op-count balancing does on CNNs
//! whose late layers hold most of the weights. `respect-tpu::compile`
//! wraps these together with the weight-processing passes that dominate
//! the real compiler's solving time (Fig. 3).

use respect_graph::Dag;

use crate::order;
use crate::schedule::{Schedule, ScheduleError};
use crate::Scheduler;

/// Operator-count-balancing contiguous partitioner — the behaviour of
/// `edgetpu_compiler --num_segments N` at the time of the paper.
#[derive(Debug, Clone, Copy, Default)]
#[must_use]
pub struct OpBalanced;

impl OpBalanced {
    /// Creates the scheduler.
    pub fn new() -> Self {
        OpBalanced
    }
}

impl Scheduler for OpBalanced {
    fn name(&self) -> &str {
        "EdgeTPU compiler (op count)"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let sequence = order::default_order(dag);
        let n = sequence.len();
        let cuts: Vec<usize> = (1..num_stages).map(|k| k * n / num_stages).collect();
        Ok(Schedule::from_cuts(&sequence, &cuts, num_stages))
    }
}

/// Parameter-balancing contiguous partitioner (the newer profiling-based
/// Coral partitioner's initial guess).
#[derive(Debug, Clone, Copy, Default)]
#[must_use]
pub struct ParamBalanced;

impl ParamBalanced {
    /// Creates the scheduler.
    pub fn new() -> Self {
        ParamBalanced
    }
}

impl Scheduler for ParamBalanced {
    fn name(&self) -> &str {
        "EdgeTPU compiler"
    }

    fn schedule(&self, dag: &Dag, num_stages: usize) -> Result<Schedule, ScheduleError> {
        if num_stages == 0 {
            return Err(ScheduleError::NoStages);
        }
        let sequence = order::default_order(dag);
        let total: u64 = dag.total_param_bytes();
        let mut cuts = Vec::with_capacity(num_stages - 1);
        let mut cum = 0u64;
        let mut next_target = 1u64;
        for (i, &v) in sequence.iter().enumerate() {
            if cuts.len() + 1 == num_stages {
                break;
            }
            cum += dag.node(v).param_bytes;
            // cut as soon as the running prefix reaches k/num_stages of the
            // total parameter volume
            while cuts.len() + 1 < num_stages && cum * num_stages as u64 >= total * next_target {
                cuts.push(i + 1);
                next_target += 1;
            }
        }
        while cuts.len() + 1 < num_stages {
            cuts.push(sequence.len());
        }
        Ok(Schedule::from_cuts(&sequence, &cuts, num_stages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use respect_graph::{models, SyntheticConfig, SyntheticSampler};

    #[test]
    fn produces_valid_schedules_for_all_models() {
        let sched = ParamBalanced::new();
        for (name, dag) in models::table1() {
            for k in [4, 5, 6] {
                let s = sched.schedule(&dag, k).unwrap();
                assert!(s.is_valid(&dag), "{name} k={k}");
                assert_eq!(s.num_stages(), k);
            }
        }
    }

    #[test]
    fn balances_parameters_across_stages() {
        let dag = models::resnet101();
        let s = ParamBalanced::new().schedule(&dag, 4).unwrap();
        let model = CostModel::coral();
        let res = model.stage_resources(&dag, &s);
        let total = dag.total_param_bytes();
        for (k, r) in res.iter().enumerate() {
            let share = r.param_bytes as f64 / total as f64;
            assert!(share < 0.5, "stage {k} holds {share:.2} of all parameters");
        }
        // every stage holds something
        assert!(res.iter().all(|r| r.param_bytes > 0));
    }

    #[test]
    fn rejects_zero_stages() {
        let dag = models::xception();
        assert_eq!(
            ParamBalanced::new().schedule(&dag, 0).unwrap_err(),
            ScheduleError::NoStages
        );
    }

    #[test]
    fn single_stage_puts_everything_on_stage_zero() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(2), 2);
        let dag = sampler.sample();
        let s = ParamBalanced::new().schedule(&dag, 1).unwrap();
        assert!(s.stage_of().iter().all(|&x| x == 0));
    }

    #[test]
    fn handles_more_stages_than_nodes() {
        let mut sampler = SyntheticSampler::new(SyntheticConfig::paper(2), 2);
        let dag = sampler.sample();
        let s = ParamBalanced::new().schedule(&dag, 64).unwrap();
        assert!(s.is_valid(&dag));
    }

    #[test]
    fn name_identifies_baseline() {
        assert_eq!(ParamBalanced::new().name(), "EdgeTPU compiler");
        assert_eq!(OpBalanced::new().name(), "EdgeTPU compiler (op count)");
    }

    #[test]
    fn op_balanced_splits_node_counts_evenly() {
        let dag = models::resnet50(); // 177 nodes
        let s = OpBalanced::new().schedule(&dag, 4).unwrap();
        assert!(s.is_valid(&dag));
        let mut counts = vec![0usize; 4];
        for &st in s.stage_of() {
            counts[st] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 177 / 4).abs() <= 1, "counts {counts:?}");
        }
    }

    #[test]
    fn op_balanced_overloads_late_stages_with_parameters() {
        // equal op counts + channel-doubling profile => the last stage
        // holds far more than its parameter share (the paper's Sec. IV-A
        // degradation)
        let dag = models::resnet152();
        let s = OpBalanced::new().schedule(&dag, 6).unwrap();
        let model = CostModel::coral();
        let res = model.stage_resources(&dag, &s);
        let total = dag.total_param_bytes();
        let last_share = res[5].param_bytes as f64 / total as f64;
        assert!(
            last_share > 1.5 / 6.0,
            "last stage share {last_share:.3} should exceed fair share"
        );
    }

    #[test]
    fn op_balanced_valid_on_all_models() {
        for (name, dag) in models::table1() {
            for k in [4, 5, 6] {
                let s = OpBalanced::new().schedule(&dag, k).unwrap();
                assert!(s.is_valid(&dag), "{name} k={k}");
            }
        }
    }
}
