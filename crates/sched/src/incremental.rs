//! Incremental cost evaluation under single-node stage moves.
//!
//! Local-search schedulers (simulated annealing, greedy refinement)
//! propose thousands of small schedule perturbations, and recomputing
//! [`CostModel::stage_costs`] from scratch for each one costs `O(V + E)`.
//! An [`IncrementalEvaluator`] maintains the per-stage
//! `(param_bytes, macs, cut_in_bytes)` aggregates and per-stage costs
//! under **single-node moves** in `O(deg(v) + k)` per move, where `k` is
//! the stage count.
//!
//! The aggregates are integers, so incremental add/subtract is exact, and
//! per-stage costs are recomputed from the aggregates through the same
//! [`CostModel::stage_cost`] function the full evaluation uses — the
//! evaluator therefore agrees **bitwise** (as `f64`) with a fresh
//! [`CostModel::stage_costs`] / [`CostModel::objective`] after any
//! sequence of moves (property-tested in `crates/sched/tests`).

use respect_graph::{Dag, NodeId};

use crate::cost::{CostModel, StageResources};
use crate::schedule::Schedule;

/// Maintains per-stage resource aggregates, per-stage costs, and the
/// bottleneck objective of one evolving schedule. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'a> {
    dag: &'a Dag,
    model: CostModel,
    num_stages: usize,
    stage_of: Vec<usize>,
    res: Vec<StageResources>,
    costs: Vec<f64>,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Builds the evaluator from a schedule (one full `O(V + E)`
    /// aggregation, exactly [`CostModel::stage_resources`]).
    pub fn new(dag: &'a Dag, model: CostModel, schedule: &Schedule) -> Self {
        let res = model.stage_resources(dag, schedule);
        let costs = res
            .iter()
            .map(|r| model.stage_cost(r.param_bytes, r.macs, r.cut_in_bytes))
            .collect();
        IncrementalEvaluator {
            dag,
            model,
            num_stages: schedule.num_stages(),
            stage_of: schedule.stage_of().to_vec(),
            res,
            costs,
        }
    }

    /// Current stage of `node`.
    #[inline]
    pub fn stage(&self, node: NodeId) -> usize {
        self.stage_of[node.index()]
    }

    /// The stage-per-node vector, indexed by node id.
    #[inline]
    pub fn stage_of(&self) -> &[usize] {
        &self.stage_of
    }

    /// Number of pipeline stages.
    #[inline]
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Current per-stage resource aggregates.
    pub fn stage_resources(&self) -> &[StageResources] {
        &self.res
    }

    /// Current per-stage costs (bitwise identical to a fresh
    /// [`CostModel::stage_costs`] on the current assignment).
    pub fn stage_costs(&self) -> &[f64] {
        &self.costs
    }

    /// The bottleneck objective `max` over stage costs; folds in stage
    /// order exactly like [`CostModel::objective`].
    pub fn bottleneck(&self) -> f64 {
        self.costs.iter().copied().fold(0.0, f64::max)
    }

    /// Materializes the current assignment as a [`Schedule`].
    ///
    /// # Panics
    ///
    /// Never panics: stages are kept in range by
    /// [`move_node`](IncrementalEvaluator::move_node).
    pub fn to_schedule(&self) -> Schedule {
        Schedule::new(self.stage_of.clone(), self.num_stages).expect("stages stay in range")
    }

    /// Moves node `v` to stage `to`, updating the aggregates of the
    /// source and destination stages and of every stage that consumes one
    /// of `v`'s outputs. `O(deg(v) + k)`. Returns the previous stage (pass
    /// it back to undo the move).
    ///
    /// # Panics
    ///
    /// Panics if `to >= num_stages`.
    pub fn move_node(&mut self, v: NodeId, to: usize) -> usize {
        assert!(to < self.num_stages, "stage out of range");
        let from = self.stage_of[v.index()];
        if from == to {
            return from;
        }
        let node = self.dag.node(v);
        self.res[from].param_bytes -= node.param_bytes;
        self.res[from].macs -= node.macs;
        self.res[to].param_bytes += node.param_bytes;
        self.res[to].macs += node.macs;
        // incoming edges (p -> v): accounted at v's stage when crossing
        for &p in self.dag.preds(v) {
            let sp = self.stage_of[p.index()];
            if sp != from {
                self.res[from].cut_in_bytes -= self.dag.node(p).output_bytes;
            }
            if sp != to {
                self.res[to].cut_in_bytes += self.dag.node(p).output_bytes;
            }
        }
        // outgoing edges (v -> s): accounted at each consumer's stage
        let out = node.output_bytes;
        for &s in self.dag.succs(v) {
            let ss = self.stage_of[s.index()];
            if ss != from {
                self.res[ss].cut_in_bytes -= out;
            }
            if ss != to {
                self.res[ss].cut_in_bytes += out;
            }
        }
        self.stage_of[v.index()] = to;
        // refresh costs of every stage whose aggregates may have changed
        self.refresh(from);
        self.refresh(to);
        for &s in self.dag.succs(v) {
            self.refresh(self.stage_of[s.index()]);
        }
        from
    }

    #[inline]
    fn refresh(&mut self, stage: usize) {
        let r = self.res[stage];
        self.costs[stage] = self.model.stage_cost(r.param_bytes, r.macs, r.cut_in_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respect_graph::{DagBuilder, OpKind, OpNode};

    /// a(1MB,10) -> b(2MB,20) -> d(1MB,5); a -> c(4MB,40) -> d.
    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let specs = [
            (1u64 << 20, 10u64),
            (2 << 20, 20),
            (4 << 20, 40),
            (1 << 20, 5),
        ];
        let ids: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, &(p, m))| {
                b.add_node(
                    OpNode::new(format!("n{i}"), OpKind::Conv2d)
                        .with_params(p)
                        .with_macs(m)
                        .with_output(64 * (i as u64 + 1)),
                )
            })
            .collect();
        b.add_edge(ids[0], ids[1]).unwrap();
        b.add_edge(ids[0], ids[2]).unwrap();
        b.add_edge(ids[1], ids[3]).unwrap();
        b.add_edge(ids[2], ids[3]).unwrap();
        b.build().unwrap()
    }

    fn assert_agrees(eval: &IncrementalEvaluator, dag: &Dag, model: &CostModel) {
        let schedule = eval.to_schedule();
        let full_res = model.stage_resources(dag, &schedule);
        assert_eq!(eval.stage_resources(), full_res.as_slice());
        let full_costs = model.stage_costs(dag, &schedule);
        for (a, b) in eval.stage_costs().iter().zip(&full_costs) {
            assert_eq!(a.to_bits(), b.to_bits(), "stage cost drifted");
        }
        assert_eq!(
            eval.bottleneck().to_bits(),
            model.objective(dag, &schedule).to_bits()
        );
    }

    #[test]
    fn matches_full_recompute_after_moves() {
        let dag = diamond();
        let model = CostModel::coral();
        let init = Schedule::new(vec![0, 0, 1, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&dag, model, &init);
        assert_agrees(&eval, &dag, &model);
        for (v, to) in [(1u32, 1), (2, 2), (3, 2), (1, 0), (0, 0), (3, 1)] {
            eval.move_node(NodeId(v), to);
            assert_agrees(&eval, &dag, &model);
        }
    }

    #[test]
    fn move_returns_previous_stage_for_undo() {
        let dag = diamond();
        let model = CostModel::coral();
        let init = Schedule::new(vec![0, 1, 1, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&dag, model, &init);
        let before = eval.bottleneck();
        let prev = eval.move_node(NodeId(2), 2);
        assert_eq!(prev, 1);
        eval.move_node(NodeId(2), prev);
        assert_eq!(eval.bottleneck().to_bits(), before.to_bits());
        assert_agrees(&eval, &dag, &model);
    }

    #[test]
    fn same_stage_move_is_a_no_op() {
        let dag = diamond();
        let model = CostModel::coral();
        let init = Schedule::new(vec![0, 1, 1, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&dag, model, &init);
        let costs: Vec<u64> = eval.stage_costs().iter().map(|c| c.to_bits()).collect();
        eval.move_node(NodeId(1), 1);
        let after: Vec<u64> = eval.stage_costs().iter().map(|c| c.to_bits()).collect();
        assert_eq!(costs, after);
    }

    #[test]
    #[should_panic(expected = "stage out of range")]
    fn rejects_out_of_range_stage() {
        let dag = diamond();
        let init = Schedule::new(vec![0, 0, 0, 0], 2).unwrap();
        let mut eval = IncrementalEvaluator::new(&dag, CostModel::coral(), &init);
        eval.move_node(NodeId(0), 2);
    }
}
