//! Property-based tests of the scheduling substrate: validity, optimality
//! bounds, and repair guarantees over randomly sampled problem instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use respect_graph::{NodeId, SyntheticConfig, SyntheticSampler};
use respect_sched::repair::{repair, RepairConfig};
use respect_sched::{brute, exact, order, pack, CostModel, IncrementalEvaluator, Schedule};

fn sample(nodes: usize, deg: usize, seed: u64) -> respect_graph::Dag {
    let cfg = SyntheticConfig {
        num_nodes: nodes,
        max_in_degree: deg,
        param_bytes_range: (1, 4096),
        output_bytes_range: (1, 1024),
        ..SyntheticConfig::default()
    };
    SyntheticSampler::new(cfg, seed).sample()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pack_produces_valid_schedules_on_random_orders(
        seed in 0u64..5_000,
        stages in 1usize..7,
        order_seed in 0u64..100,
    ) {
        let dag = sample(20, 3, seed);
        let model = CostModel::coral();
        let mut rng = StdRng::seed_from_u64(order_seed);
        let sequence = order::random_topo_order(&dag, &mut rng);
        let (schedule, obj) = pack::pack(&dag, &sequence, stages, &model);
        prop_assert!(schedule.is_valid(&dag));
        // DP value matches independent recomputation
        let recomputed = model.objective(&dag, &schedule);
        prop_assert!((obj - recomputed).abs() <= 1e-9 * obj.max(1e-30));
        // never below the information-theoretic lower bound
        prop_assert!(obj + 1e-15 >= model.lower_bound(&dag, stages));
    }

    #[test]
    fn repair_always_yields_valid_schedules(
        seed in 0u64..5_000,
        stages in 1usize..6,
        raw_seed in 0u64..1_000,
    ) {
        let dag = sample(15, 4, seed);
        // adversarial raw predictions from a hash
        let raw: Vec<usize> = (0..dag.len())
            .map(|i| ((raw_seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % (stages + 2))
            .collect();
        let s = repair(&dag, &raw, stages, RepairConfig::default()).unwrap();
        prop_assert!(s.is_valid(&dag));
        let s2 = repair(
            &dag,
            &raw,
            stages,
            RepairConfig { sibling_stages: false, ..RepairConfig::default() },
        )
        .unwrap();
        prop_assert!(s2.is_valid(&dag));
    }

    #[test]
    fn repair_legalizes_fully_arbitrary_predictions(
        seed in 0u64..5_000,
        stages in 1usize..6,
        raw_seed in 0u64..1_000,
    ) {
        // raw stages drawn uniformly from the whole usize-ish range,
        // far outside 0..stages — the worst a broken policy could emit
        let dag = sample(12, 3, seed);
        let mut rng = StdRng::seed_from_u64(raw_seed);
        let raw: Vec<usize> = (0..dag.len())
            .map(|_| rng.gen_range(0usize..usize::MAX / 2))
            .collect();
        let s = repair(&dag, &raw, stages, RepairConfig::default()).unwrap();
        prop_assert!(s.is_valid(&dag));
        prop_assert!(s.stage_of().iter().all(|&st| st < stages));
    }

    #[test]
    fn repair_is_idempotent_and_valid_at_one_round(
        seed in 0u64..5_000,
        stages in 1usize..6,
        raw_seed in 0u64..1_000,
    ) {
        // regression for the sibling/dependency alternation: hoisting a
        // child could undo dependency validity within a round, making the
        // bounded fixpoint non-idempotent. Both guarantees must now hold
        // even with a single round.
        let dag = sample(15, 4, seed);
        let cfg = RepairConfig { sibling_stages: true, max_rounds: 1 };
        let mut rng = StdRng::seed_from_u64(raw_seed);
        let raw: Vec<usize> = (0..dag.len()).map(|_| rng.gen_range(0usize..stages + 3)).collect();
        let once = repair(&dag, &raw, stages, cfg).unwrap();
        prop_assert!(once.is_valid(&dag), "repair must be dependency-valid at max_rounds = 1");
        let twice = repair(&dag, once.stage_of(), stages, cfg).unwrap();
        prop_assert_eq!(
            twice.stage_of(),
            once.stage_of(),
            "repair(repair(raw)) must equal repair(raw)"
        );
        // the structural sibling rule is no longer best-effort: children
        // of every node share a stage in the output
        for u in dag.node_ids() {
            let children = dag.succs(u);
            if children.len() > 1 {
                let s0 = once.stage(children[0]);
                prop_assert!(
                    children.iter().all(|&c| once.stage(c) == s0),
                    "siblings must be co-located"
                );
            }
        }
    }

    #[test]
    fn incremental_evaluator_matches_full_recompute_bitwise(
        seed in 0u64..5_000,
        stages in 1usize..6,
        move_seed in 0u64..1_000,
    ) {
        // arbitrary sequences of random single-node stage moves must keep
        // the evaluator bitwise-identical (f64) to a fresh full evaluation
        let dag = sample(16, 3, seed);
        let model = CostModel::coral();
        let mut rng = StdRng::seed_from_u64(move_seed);
        let init: Vec<usize> = (0..dag.len()).map(|_| rng.gen_range(0..stages)).collect();
        let schedule = Schedule::new(init, stages).unwrap();
        let mut eval = IncrementalEvaluator::new(&dag, model, &schedule);
        for _ in 0..40 {
            let v = NodeId(rng.gen_range(0..dag.len()) as u32);
            let to = rng.gen_range(0..stages);
            eval.move_node(v, to);
            let cur = eval.to_schedule();
            let full_costs = model.stage_costs(&dag, &cur);
            for (a, b) in eval.stage_costs().iter().zip(&full_costs) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "stage cost drifted: {} vs {}", a, b);
            }
            prop_assert_eq!(
                eval.bottleneck().to_bits(),
                model.objective(&dag, &cur).to_bits(),
                "bottleneck drifted"
            );
        }
    }

    #[test]
    fn repair_never_worsens_an_already_valid_schedule(
        seed in 0u64..5_000,
        stages in 1usize..7,
        order_seed in 0u64..100,
    ) {
        // dependency repair must be the identity on valid schedules —
        // which implies the objective cannot get worse
        let dag = sample(18, 3, seed);
        let model = CostModel::coral();
        let mut rng = StdRng::seed_from_u64(order_seed);
        let sequence = order::random_topo_order(&dag, &mut rng);
        let (valid, _) = pack::pack(&dag, &sequence, stages, &model);
        let repaired = repair(
            &dag,
            valid.stage_of(),
            stages,
            RepairConfig { sibling_stages: false, ..RepairConfig::default() },
        )
        .unwrap();
        prop_assert_eq!(repaired.stage_of(), valid.stage_of());
    }
}

proptest! {
    // exact-vs-brute is exponential in the graph size: fewer cases
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn exact_matches_brute_force_on_random_small_instances(
        seed in 0u64..1_000,
        stages in 2usize..4,
    ) {
        let dag = sample(7, 3, seed);
        let model = CostModel {
            sec_per_mac: 1e-6,
            sec_per_byte: 1.0,
            cache_bytes: 512,
        };
        let sol = exact::ExactScheduler::new(model)
            .with_warmstart_moves(100)
            .solve(&dag, stages)
            .unwrap();
        prop_assert!(sol.proven_optimal);
        let want = brute::optimal_objective(&dag, stages, &model);
        prop_assert!(
            (sol.objective - want).abs() <= 1e-9 * want.max(1e-12),
            "exact {} vs brute {}", sol.objective, want
        );
    }

    #[test]
    fn exact_dominates_every_random_packing(
        seed in 0u64..1_000,
        order_seed in 0u64..50,
    ) {
        let dag = sample(14, 3, seed);
        let model = CostModel::coral();
        let sol = exact::ExactScheduler::new(model)
            .with_warmstart_moves(100)
            .solve(&dag, 3)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(order_seed);
        let sequence = order::random_topo_order(&dag, &mut rng);
        let (_, packed) = pack::pack(&dag, &sequence, 3, &model);
        prop_assert!(sol.objective <= packed + 1e-12);
    }
}
