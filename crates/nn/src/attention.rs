//! Additive attention primitives for the glimpse and pointer heads.
//!
//! The paper's Algorithm 1 runs, per decoding step,
//!
//! ```text
//! h  <- glimpse(C * θg, ωg · h + βg)
//! Pi <- pointer(tanh(C * θp, ωp · h + βp))
//! ```
//!
//! Both are additive (Bahdanau) attentions over the encoder context matrix
//! `C ∈ R^{d x n}`: scores `u_i = vᵀ tanh(W_ref C_i + W_q q)`; the glimpse
//! additionally contracts `C` with the score softmax to refine the query.

use rand::Rng;

use crate::init;
use crate::params::{Bindings, Params};
use crate::tape::{Tape, Var};
use crate::tensor::Matrix;

/// Static description of one additive-attention head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttentionSpec {
    /// Hidden dimension `d` of context columns and query.
    pub dim: usize,
    /// Parameter-name prefix, e.g. `"glimpse"` or `"pointer"`.
    pub name: String,
}

impl AttentionSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, dim: usize) -> Self {
        AttentionSpec {
            dim,
            name: name.into(),
        }
    }

    fn names(&self) -> (String, String, String, String) {
        (
            format!("{}.w_ref", self.name),
            format!("{}.w_q", self.name),
            format!("{}.v", self.name),
            format!("{}.b", self.name),
        )
    }

    /// Registers `w_ref`, `w_q`, `v`, and `b` in `params`.
    pub fn register(&self, params: &mut Params, rng: &mut impl Rng) {
        let (wr, wq, v, b) = self.names();
        params.insert(wr, init::xavier_uniform(self.dim, self.dim, rng));
        params.insert(wq, init::xavier_uniform(self.dim, self.dim, rng));
        params.insert(v, init::xavier_uniform(self.dim, 1, rng));
        params.insert(b, Matrix::zeros(self.dim, 1));
    }

    /// Binds the registered weights on a tape.
    ///
    /// # Panics
    ///
    /// Panics if the head was not registered in the bound `Params`.
    pub fn bind(&self, bindings: &Bindings) -> AttentionHead {
        let (wr, wq, v, b) = self.names();
        AttentionHead {
            w_ref: bindings.var(&wr),
            w_q: bindings.var(&wq),
            v: bindings.var(&v),
            b: bindings.var(&b),
        }
    }
}

/// An attention head bound to one tape.
#[derive(Debug, Clone, Copy)]
pub struct AttentionHead {
    w_ref: Var,
    w_q: Var,
    v: Var,
    b: Var,
}

impl AttentionHead {
    /// Precomputes `W_ref @ C` once per graph; reused by every decode step.
    pub fn project_context(&self, tape: &mut Tape, context: Var) -> Var {
        tape.matmul(self.w_ref, context)
    }

    /// Raw attention scores `u ∈ R^{n x 1}` for query `q` against the
    /// projected context (`n` columns).
    pub fn scores(&self, tape: &mut Tape, projected: Var, q: Var) -> Var {
        let qp = tape.matmul(self.w_q, q);
        let qb = tape.add(qp, self.b);
        let s = tape.add_col_broadcast(projected, qb);
        let u = tape.tanh(s);
        let row = tape.matmul_ta(self.v, u);
        tape.transpose(row)
    }

    /// Glimpse: softmax-attend over the (unmasked) context columns and
    /// return the attention-weighted context vector `C @ softmax(u)`.
    pub fn glimpse(
        &self,
        tape: &mut Tape,
        context: Var,
        projected: Var,
        q: Var,
        mask: &[bool],
    ) -> Var {
        let u = self.scores(tape, projected, q);
        let p = tape.softmax_masked(u, mask);
        tape.matmul(context, p)
    }

    /// Batched scores: `projected` stacks `B` projected contexts
    /// graph-major (`[d, B*n]`), `q` holds one query column per graph
    /// (`[d, B]`); returns `[n, B]` whose column `g` equals
    /// [`scores`](AttentionHead::scores) on graph `g` alone.
    pub fn scores_batch(&self, tape: &mut Tape, projected: Var, q: Var, n: usize) -> Var {
        let qp = tape.matmul(self.w_q, q);
        let qb = tape.add_col_broadcast(qp, self.b);
        let s = tape.add_block_broadcast(projected, qb, n);
        let u = tape.tanh(s);
        let row = tape.matmul_ta(self.v, u); // [1, B*n]
        tape.unflatten_row(row, n)
    }

    /// Batched glimpse over stacked contexts (`context`, `projected` are
    /// `[d, B*n]`; `masks[g*n + i]` masks node `i` of graph `g`); returns
    /// `[d, B]` with one refined query column per graph.
    pub fn glimpse_batch(
        &self,
        tape: &mut Tape,
        context: Var,
        projected: Var,
        q: Var,
        n: usize,
        masks: &[bool],
    ) -> Var {
        let u = self.scores_batch(tape, projected, q, n);
        let p = tape.softmax_masked_cols(u, masks);
        tape.block_matvec(context, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn head_fixture(d: usize) -> (Params, AttentionSpec) {
        let spec = AttentionSpec::new("att", d);
        let mut params = Params::new();
        spec.register(&mut params, &mut StdRng::seed_from_u64(5));
        (params, spec)
    }

    fn context(d: usize, n: usize) -> Matrix {
        Matrix::from_vec(d, n, (0..d * n).map(|i| 0.1 * i as f32 - 0.4).collect())
    }

    #[test]
    fn scores_shape_is_n_by_one() {
        let (params, spec) = head_fixture(4);
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let head = spec.bind(&binds);
        let c = tape.leaf(context(4, 6));
        let q = tape.leaf(Matrix::col_from_slice(&[0.1, 0.2, 0.3, 0.4]));
        let proj = head.project_context(&mut tape, c);
        let u = head.scores(&mut tape, proj, q);
        assert_eq!(tape.value(u).shape(), (6, 1));
    }

    #[test]
    fn glimpse_is_convex_combination_of_context() {
        let (params, spec) = head_fixture(3);
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let head = spec.bind(&binds);
        let cm = context(3, 5);
        let c = tape.leaf(cm.clone());
        let q = tape.leaf(Matrix::col_from_slice(&[1.0, -1.0, 0.5]));
        let proj = head.project_context(&mut tape, c);
        let g = head.glimpse(&mut tape, c, proj, q, &[false; 5]);
        let gv = tape.value(g);
        assert_eq!(gv.shape(), (3, 1));
        // each coordinate must lie within the min/max of context row
        for r in 0..3 {
            let row: Vec<f32> = (0..5).map(|cidx| cm.get(r, cidx)).collect();
            let (lo, hi) = row
                .iter()
                .fold((f32::MAX, f32::MIN), |(l, h), &x| (l.min(x), h.max(x)));
            let v = gv.get(r, 0);
            assert!(
                v >= lo - 1e-5 && v <= hi + 1e-5,
                "row {r}: {v} not in [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn masking_excludes_columns_from_glimpse() {
        let (params, spec) = head_fixture(2);
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let head = spec.bind(&binds);
        // context where column 0 is huge; masking it must change output
        let mut cm = context(2, 3);
        cm.set(0, 0, 100.0);
        let c = tape.leaf(cm);
        let q = tape.leaf(Matrix::col_from_slice(&[0.3, -0.3]));
        let proj = head.project_context(&mut tape, c);
        let g_all = head.glimpse(&mut tape, c, proj, q, &[false, false, false]);
        let g_mask = head.glimpse(&mut tape, c, proj, q, &[true, false, false]);
        assert_ne!(tape.value(g_all), tape.value(g_mask));
        // masked glimpse cannot see the huge value
        assert!(tape.value(g_mask).get(0, 0) < 10.0);
    }

    #[test]
    fn batched_scores_and_glimpse_match_serial_per_graph() {
        let (params, spec) = head_fixture(3);
        let n = 4;
        let ctx_a = context(3, n);
        let ctx_b = {
            let mut m = context(3, n);
            for i in 0..m.rows() * m.cols() {
                m.as_mut_slice()[i] *= -0.5;
            }
            m
        };
        let queries = [[0.2f32, -0.4, 0.8], [-0.1, 0.6, 0.0]];
        let masks = [vec![false, true, false, false], vec![false; 4]];

        // batched pass: contexts stacked graph-major, queries as columns
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let head = spec.bind(&binds);
        let mut stacked = Matrix::zeros(3, 2 * n);
        for (g, ctx) in [&ctx_a, &ctx_b].iter().enumerate() {
            for r in 0..3 {
                for i in 0..n {
                    stacked.set(r, g * n + i, ctx.get(r, i));
                }
            }
        }
        let c = tape.leaf(stacked);
        let mut q = Matrix::zeros(3, 2);
        for (g, col) in queries.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                q.set(r, g, v);
            }
        }
        let qv = tape.leaf(q);
        let proj = head.project_context(&mut tape, c);
        let scores = head.scores_batch(&mut tape, proj, qv, n);
        let flat_masks: Vec<bool> = masks.iter().flatten().copied().collect();
        let glimpse = head.glimpse_batch(&mut tape, c, proj, qv, n, &flat_masks);

        for (g, ctx) in [&ctx_a, &ctx_b].iter().enumerate() {
            let mut t = Tape::new();
            let b = params.bind(&mut t);
            let h = spec.bind(&b);
            let cv = t.leaf((*ctx).clone());
            let qv1 = t.leaf(Matrix::col_from_slice(&queries[g]));
            let p1 = h.project_context(&mut t, cv);
            let u1 = h.scores(&mut t, p1, qv1);
            let g1 = h.glimpse(&mut t, cv, p1, qv1, &masks[g]);
            for i in 0..n {
                assert_eq!(
                    tape.value(scores).get(i, g).to_bits(),
                    t.value(u1).get(i, 0).to_bits(),
                    "score {i} of graph {g}"
                );
            }
            for r in 0..3 {
                assert_eq!(
                    tape.value(glimpse).get(r, g).to_bits(),
                    t.value(g1).get(r, 0).to_bits(),
                    "glimpse row {r} of graph {g}"
                );
            }
        }
    }

    #[test]
    fn gradients_reach_all_attention_weights() {
        let (params, spec) = head_fixture(3);
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let head = spec.bind(&binds);
        let c = tape.leaf(context(3, 4));
        let q = tape.leaf(Matrix::col_from_slice(&[0.2, 0.1, -0.1]));
        let proj = head.project_context(&mut tape, c);
        let g = head.glimpse(&mut tape, c, proj, q, &[false; 4]);
        let loss = tape.sum(g);
        tape.backward(loss);
        for name in ["att.w_ref", "att.w_q", "att.v"] {
            assert!(
                tape.grad(binds.var(name)).max_abs() > 0.0,
                "{name} gradient must be nonzero"
            );
        }
    }
}
