//! LSTM cells, the building block of the paper's encoder and decoder
//! networks (Fig. 1b: both are "LSTMs with 256 cells").
//!
//! Weights use the fused-gate layout `W ∈ R^{4h x (in + h)}`, gate order
//! `[input, forget, cell, output]`, with the forget-gate bias initialized
//! to 1 (standard practice for stable early training).

use rand::Rng;

use crate::init;
use crate::params::{Bindings, Params};
use crate::tape::{Tape, Var};
use crate::tensor::Matrix;

/// Static description of an LSTM cell: sizes plus a parameter-name prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LstmSpec {
    /// Input vector size.
    pub input: usize,
    /// Hidden/cell state size (the paper uses 256).
    pub hidden: usize,
    /// Parameter-name prefix, e.g. `"encoder"`.
    pub name: String,
}

impl LstmSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, input: usize, hidden: usize) -> Self {
        LstmSpec {
            input,
            hidden,
            name: name.into(),
        }
    }

    fn w_name(&self) -> String {
        format!("{}.w", self.name)
    }

    fn b_name(&self) -> String {
        format!("{}.b", self.name)
    }

    /// Registers this cell's weights (`<name>.w`, `<name>.b`) in `params`.
    pub fn register(&self, params: &mut Params, rng: &mut impl Rng) {
        let w = init::xavier_uniform(4 * self.hidden, self.input + self.hidden, rng);
        let mut b = Matrix::zeros(4 * self.hidden, 1);
        for i in self.hidden..2 * self.hidden {
            b.set(i, 0, 1.0); // forget-gate bias
        }
        params.insert(self.w_name(), w);
        params.insert(self.b_name(), b);
    }

    /// Binds the registered weights on a tape.
    ///
    /// # Panics
    ///
    /// Panics if [`register`](LstmSpec::register) was not called on the
    /// `Params` these bindings came from.
    pub fn bind(&self, bindings: &Bindings) -> LstmCell {
        LstmCell {
            w: bindings.var(&self.w_name()),
            b: bindings.var(&self.b_name()),
            hidden: self.hidden,
        }
    }
}

/// An LSTM cell bound to one tape (weights as tape variables).
#[derive(Debug, Clone, Copy)]
pub struct LstmCell {
    w: Var,
    b: Var,
    hidden: usize,
}

/// Hidden and cell state of an LSTM.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state `h`.
    pub h: Var,
    /// Cell state `c`.
    pub c: Var,
}

impl LstmCell {
    /// Hidden size of the cell.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// All-zero initial state.
    pub fn zero_state(&self, tape: &mut Tape) -> LstmState {
        LstmState {
            h: tape.leaf(Matrix::zeros(self.hidden, 1)),
            c: tape.leaf(Matrix::zeros(self.hidden, 1)),
        }
    }

    /// One step: consumes input column `x`, returns the next state.
    ///
    /// # Panics
    ///
    /// Panics (inside tape ops) if `x` does not match the spec's input
    /// size.
    pub fn step(&self, tape: &mut Tape, x: Var, state: LstmState) -> LstmState {
        let h = self.hidden;
        let xin = tape.concat_rows(x, state.h);
        let z0 = tape.matmul(self.w, xin);
        let z = tape.add(z0, self.b);
        let i = tape.slice_rows(z, 0, h);
        let f = tape.slice_rows(z, h, h);
        let g = tape.slice_rows(z, 2 * h, h);
        let o = tape.slice_rows(z, 3 * h, h);
        let ig = tape.sigmoid(i);
        let fg = tape.sigmoid(f);
        let gg = tape.tanh(g);
        let og = tape.sigmoid(o);
        let fc = tape.mul_elem(fg, state.c);
        let igg = tape.mul_elem(ig, gg);
        let c = tape.add(fc, igg);
        let ct = tape.tanh(c);
        let hn = tape.mul_elem(og, ct);
        LstmState { h: hn, c }
    }

    /// All-zero initial state for a batch of `batch` lanes (`[h, batch]`
    /// state matrices; lane `g` is column `g`).
    pub fn zero_state_batch(&self, tape: &mut Tape, batch: usize) -> LstmState {
        LstmState {
            h: tape.leaf(Matrix::zeros(self.hidden, batch)),
            c: tape.leaf(Matrix::zeros(self.hidden, batch)),
        }
    }

    /// One step over a whole batch: `x` and the state are `[·, B]`
    /// matrices with one batch lane per column. Column `g` of the result
    /// equals a [`step`](LstmCell::step) on column `g` alone (the bias is
    /// broadcast per column; all other ops are already column-local).
    ///
    /// # Panics
    ///
    /// Panics (inside tape ops) on shape mismatches.
    pub fn step_batch(&self, tape: &mut Tape, x: Var, state: LstmState) -> LstmState {
        let h = self.hidden;
        let xin = tape.concat_rows(x, state.h);
        let z0 = tape.matmul(self.w, xin);
        let z = tape.add_col_broadcast(z0, self.b);
        let i = tape.slice_rows(z, 0, h);
        let f = tape.slice_rows(z, h, h);
        let g = tape.slice_rows(z, 2 * h, h);
        let o = tape.slice_rows(z, 3 * h, h);
        let ig = tape.sigmoid(i);
        let fg = tape.sigmoid(f);
        let gg = tape.tanh(g);
        let og = tape.sigmoid(o);
        let fc = tape.mul_elem(fg, state.c);
        let igg = tape.mul_elem(ig, gg);
        let c = tape.add(fc, igg);
        let ct = tape.tanh(c);
        let hn = tape.mul_elem(og, ct);
        LstmState { h: hn, c }
    }

    /// Runs the cell over a sequence of inputs, returning every hidden
    /// state and the final state.
    pub fn run(&self, tape: &mut Tape, inputs: &[Var], init: LstmState) -> (Vec<Var>, LstmState) {
        let mut state = init;
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            state = self.step(tape, x, state);
            hs.push(state.h);
        }
        (hs, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(input: usize, hidden: usize) -> (Params, LstmSpec) {
        let spec = LstmSpec::new("test", input, hidden);
        let mut params = Params::new();
        spec.register(&mut params, &mut StdRng::seed_from_u64(3));
        (params, spec)
    }

    #[test]
    fn register_creates_expected_shapes() {
        let (params, _) = setup(5, 8);
        assert_eq!(params.get("test.w").unwrap().shape(), (32, 13));
        assert_eq!(params.get("test.b").unwrap().shape(), (32, 1));
        // forget-gate bias block is ones
        let b = params.get("test.b").unwrap();
        assert_eq!(b.get(8, 0), 1.0);
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(16, 0), 0.0);
    }

    #[test]
    fn step_produces_bounded_outputs() {
        let (params, spec) = setup(4, 6);
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let cell = spec.bind(&binds);
        let x = tape.leaf(Matrix::col_from_slice(&[1.0, -2.0, 0.5, 3.0]));
        let s0 = cell.zero_state(&mut tape);
        let s1 = cell.step(&mut tape, x, s0);
        let h = tape.value(s1.h);
        assert_eq!(h.shape(), (6, 1));
        // h = o * tanh(c) is in (-1, 1)
        assert!(h.as_slice().iter().all(|&v| v.abs() < 1.0));
        // state actually moved
        assert!(h.max_abs() > 0.0);
    }

    #[test]
    fn run_threads_state_through_sequence() {
        let (params, spec) = setup(2, 4);
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let cell = spec.bind(&binds);
        let xs: Vec<Var> = (0..3)
            .map(|i| tape.leaf(Matrix::col_from_slice(&[i as f32, 1.0])))
            .collect();
        let s0 = cell.zero_state(&mut tape);
        let (hs, last) = cell.run(&mut tape, &xs, s0);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[2], last.h);
        // successive hidden states differ (the cell is not a no-op)
        assert_ne!(tape.value(hs[0]), tape.value(hs[1]));
    }

    #[test]
    fn gradients_flow_to_lstm_weights() {
        let (params, spec) = setup(3, 5);
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let cell = spec.bind(&binds);
        let x = tape.leaf(Matrix::col_from_slice(&[0.3, -0.2, 0.9]));
        let s0 = cell.zero_state(&mut tape);
        let s1 = cell.step(&mut tape, x, s0);
        let s2 = cell.step(&mut tape, x, s1);
        let loss = tape.sum(s2.h);
        tape.backward(loss);
        let gw = tape.grad(binds.var("test.w"));
        assert!(gw.max_abs() > 0.0, "weight gradient must be nonzero");
        let gb = tape.grad(binds.var("test.b"));
        assert!(gb.max_abs() > 0.0, "bias gradient must be nonzero");
    }

    #[test]
    fn deterministic_given_seed() {
        let (p1, _) = setup(3, 5);
        let (p2, _) = setup(3, 5);
        assert_eq!(p1, p2);
    }

    #[test]
    fn step_batch_columns_match_serial_steps() {
        let (params, spec) = setup(3, 4);
        let cols = [[0.3f32, -0.2, 0.9], [1.1, 0.0, -0.5]];
        // batched: both inputs as one [3, 2] matrix
        let mut tape = Tape::new();
        let binds = params.bind(&mut tape);
        let cell = spec.bind(&binds);
        let mut x = Matrix::zeros(3, 2);
        for (g, col) in cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                x.set(r, g, v);
            }
        }
        let xv = tape.leaf(x);
        let s0 = cell.zero_state_batch(&mut tape, 2);
        let s1 = cell.step_batch(&mut tape, xv, s0);
        let s2 = cell.step_batch(&mut tape, xv, s1);
        let batched = tape.value(s2.h).clone();
        // serial: one lane at a time
        for (g, col) in cols.iter().enumerate() {
            let mut t = Tape::new();
            let b = params.bind(&mut t);
            let c = spec.bind(&b);
            let x1 = t.leaf(Matrix::col_from_slice(col));
            let z0 = c.zero_state(&mut t);
            let z1 = c.step(&mut t, x1, z0);
            let z2 = c.step(&mut t, x1, z1);
            let serial = t.value(z2.h);
            for r in 0..4 {
                assert_eq!(
                    batched.get(r, g).to_bits(),
                    serial.get(r, 0).to_bits(),
                    "lane {g} row {r}"
                );
            }
        }
    }
}
