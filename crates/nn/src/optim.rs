//! First-order optimizers.
//!
//! The paper trains with Adam at learning rate `1e-4` (Sec. IV, setup);
//! [`Adam::paper`] reproduces that configuration.

use crate::params::Params;
use crate::tensor::Matrix;

/// Optimizer over a [`Params`] collection.
///
/// `grads` must be aligned with the parameter registration order, as
/// produced by [`crate::params::Bindings::grads`].
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, params: &mut Params, grads: &[Matrix]);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "grad count");
        for (i, g) in grads.iter().enumerate() {
            let p = params.value_at_mut(i);
            for (w, &gi) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *w -= self.lr * gi;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The paper's configuration: Adam, learning rate `1e-4`.
    pub fn paper() -> Self {
        Adam::new(1e-4)
    }

    /// Update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "grad count");
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, g) in grads.iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let p = params.value_at_mut(i);
            for ((w, &gi), (mi, vi)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let mhat = *mi / b1t;
                let vhat = *vi / b2t;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params(x0: f32) -> Params {
        let mut p = Params::new();
        p.insert("x", Matrix::col_from_slice(&[x0]));
        p
    }

    /// d/dx (x - 3)^2 = 2(x - 3)
    fn quad_grad(p: &Params) -> Vec<Matrix> {
        let x = p.get("x").unwrap().get(0, 0);
        vec![Matrix::col_from_slice(&[2.0 * (x - 3.0)])]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_params(0.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p.get("x").unwrap().get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = quadratic_params(-5.0);
        let mut opt = Adam::new(0.3);
        for _ in 0..500 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p.get("x").unwrap().get(0, 0) - 3.0).abs() < 1e-2);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        // With bias correction, |Δw| of the first step ≈ lr.
        let mut p = quadratic_params(0.0);
        let mut opt = Adam::new(0.01);
        let g = quad_grad(&p);
        opt.step(&mut p, &g);
        let moved = (p.get("x").unwrap().get(0, 0)).abs();
        assert!((moved - 0.01).abs() < 1e-4, "moved {moved}");
    }

    #[test]
    #[should_panic(expected = "grad count")]
    fn mismatched_grads_panic() {
        let mut p = quadratic_params(0.0);
        Sgd::new(0.1).step(&mut p, &[]);
    }

    #[test]
    fn paper_preset_matches_setup() {
        let a = Adam::paper();
        assert_eq!(a.lr, 1e-4);
    }
}
