//! Neural-network substrate for the RESPECT reproduction, built from
//! scratch (the paper uses PyTorch; see `DESIGN.md` for the substitution).
//!
//! The pieces are exactly what the LSTM-PtrNet of the paper's Fig. 1b /
//! Algorithm 1 needs:
//!
//! * [`tensor::Matrix`] — a dense row-major `f32` matrix;
//! * [`tape`] — reverse-mode automatic differentiation on a tape of ops
//!   (matmul, elementwise nonlinearities, masked softmax/log-softmax,
//!   slicing/concat for LSTM gates, ...);
//! * [`lstm`] — LSTM cells with forget-gate bias initialization;
//! * [`attention`] — additive (Bahdanau-style) attention primitives used
//!   for the glimpse and the pointer head;
//! * [`params`] — named parameter collections;
//! * [`optim`] — Adam and SGD;
//! * [`serialize`] — a small self-describing binary weight format.
//!
//! # Example: differentiate a tiny expression
//!
//! ```
//! use respect_nn::tape::Tape;
//! use respect_nn::tensor::Matrix;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_vec(2, 1, vec![3.0, -1.0]));
//! let y = tape.tanh(x);
//! let loss = tape.sum(y);
//! tape.backward(loss);
//! let g = tape.grad(x);
//! // d tanh(x)/dx = 1 - tanh(x)^2
//! assert!((g.get(0, 0) - (1.0 - 3.0f32.tanh().powi(2))).abs() < 1e-6);
//! ```

pub mod attention;
pub mod init;
pub mod lstm;
pub mod optim;
pub mod params;
pub mod serialize;
pub mod tape;
pub mod tensor;

pub use params::{Bindings, Params};
pub use tape::{Tape, Var};
pub use tensor::Matrix;
