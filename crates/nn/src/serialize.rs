//! Binary persistence for [`Params`]: a small self-describing format so
//! trained policies survive process restarts without pulling in a serde
//! backend crate.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "RSPW" | u32 version | u32 count
//! per entry: u32 name_len | name utf-8 | u32 rows | u32 cols | f32 data
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::params::Params;
use crate::tensor::Matrix;

const MAGIC: &[u8; 4] = b"RSPW";
const VERSION: u32 = 1;

/// Errors from reading or writing weight files.
#[derive(Debug)]
#[non_exhaustive]
pub enum WeightIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes do not form a valid weight file.
    Format(String),
}

impl fmt::Display for WeightIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightIoError::Io(e) => write!(f, "weight file i/o error: {e}"),
            WeightIoError::Format(m) => write!(f, "malformed weight file: {m}"),
        }
    }
}

impl Error for WeightIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WeightIoError::Io(e) => Some(e),
            WeightIoError::Format(_) => None,
        }
    }
}

impl From<io::Error> for WeightIoError {
    fn from(e: io::Error) -> Self {
        WeightIoError::Io(e)
    }
}

/// Serializes `params` to any writer (pass `&mut writer` to keep it).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_params<W: Write>(mut w: W, params: &Params) -> Result<(), WeightIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, m) in params.iter() {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(m.rows() as u32).to_le_bytes())?;
        w.write_all(&(m.cols() as u32).to_le_bytes())?;
        for &x in m.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserializes a [`Params`] from any reader (pass `&mut reader` to keep
/// it).
///
/// # Errors
///
/// Returns [`WeightIoError::Format`] for bad magic/version/truncation and
/// [`WeightIoError::Io`] for reader failures.
pub fn read_params<R: Read>(mut r: R) -> Result<Params, WeightIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(WeightIoError::Format("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(WeightIoError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(&mut r)? as usize;
    let mut params = Params::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 20 {
            return Err(WeightIoError::Format("implausible name length".into()));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| WeightIoError::Format("name is not utf-8".into()))?;
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        if rows.saturating_mul(cols) > 1 << 28 {
            return Err(WeightIoError::Format("implausible matrix size".into()));
        }
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        params.insert(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(params)
}

/// Saves `params` to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_params(path: impl AsRef<Path>, params: &Params) -> Result<(), WeightIoError> {
    let file = std::fs::File::create(path)?;
    write_params(io::BufWriter::new(file), params)
}

/// Loads a [`Params`] from a file path.
///
/// # Errors
///
/// Propagates file-open/read errors and format violations.
pub fn load_params(path: impl AsRef<Path>) -> Result<Params, WeightIoError> {
    let file = std::fs::File::open(path)?;
    read_params(io::BufReader::new(file))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, WeightIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Params {
        let mut p = Params::new();
        p.insert(
            "enc.w",
            Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]),
        );
        p.insert("enc.b", Matrix::col_from_slice(&[-1.0, 0.5]));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        let mut buf = Vec::new();
        write_params(&mut buf, &p).unwrap();
        let q = read_params(buf.as_slice()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("respect_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.rspw");
        let p = sample();
        save_params(&path, &p).unwrap();
        let q = load_params(&path).unwrap();
        assert_eq!(p, q);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_params(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, WeightIoError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"RSPW");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_params(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation() {
        let p = sample();
        let mut buf = Vec::new();
        write_params(&mut buf, &p).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, WeightIoError::Io(_)));
    }

    #[test]
    fn empty_params_roundtrip() {
        let p = Params::new();
        let mut buf = Vec::new();
        write_params(&mut buf, &p).unwrap();
        let q = read_params(buf.as_slice()).unwrap();
        assert!(q.is_empty());
    }
}
