//! Weight initialization schemes.

use rand::Rng;

use crate::tensor::Matrix;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    uniform(rows, cols, a, rng)
}

/// Uniform initialization `U(-scale, scale)`.
pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-scale..=scale))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(16, 48, &mut rng);
        let a = (6.0f64 / 64.0).sqrt() as f32;
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
        // not degenerate
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(3, 3, 0.5, &mut StdRng::seed_from_u64(9));
        let b = uniform(3, 3, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
