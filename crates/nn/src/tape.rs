//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Tape`] records every operation of a forward pass; [`Tape::backward`]
//! walks the tape in reverse, accumulating gradients. The op set is exactly
//! what an LSTM pointer network needs: affine maps, gate nonlinearities,
//! row slicing/concatenation for fused LSTM gates, masked (log-)softmax for
//! pointer decoding with visited-node masking (paper, Algorithm 1: "logits
//! of the nodes that appeared in the solution are set to −∞"), and scalar
//! reductions for the REINFORCE loss.
//!
//! Gradients are checked against central finite differences in this
//! module's tests, op by op and through a full LSTM + attention chain.

use crate::tensor::Matrix;

/// Handle to a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Large negative logit standing in for −∞; keeps softmax NaN-free.
pub const NEG_INF_LOGIT: f32 = -1.0e9;

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    MatMulTA(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    Scale(Var, f32),
    AddColBroadcast(Var, Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    ConcatRows(Var, Var),
    ConcatCols(Vec<Var>),
    SliceCol(Var, usize),
    SliceRows(Var, usize, usize),
    Transpose(Var),
    Sum(Var),
    SoftmaxMaskedCol(Var, Vec<bool>),
    LogSoftmaxMaskedCol(Var, Vec<bool>),
    Pick(Var, usize),
    // batched primitives (one column per batch lane)
    GatherCols(Var, Vec<usize>),
    AddBlockBroadcast(Var, Var, usize),
    UnflattenRow(Var, usize),
    SoftmaxMaskedCols(Var, Vec<bool>),
    LogSoftmaxMaskedCols(Var, Vec<bool>),
    PickCols(Var, Vec<usize>),
    BlockMatVec(Var, Var),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    op: Op,
}

/// Autodiff tape. See the [module docs](self) and the crate-level example.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Matrix>,
    grads_valid: bool,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.grads_valid = false;
        let id = Var(self.nodes.len());
        self.nodes.push(Node { value, op });
        id
    }

    /// Records an input value (parameter or constant). Gradients are
    /// accumulated for every leaf; the caller decides which ones to use.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`backward`](Tape::backward) target w.r.t.
    /// `v`.
    ///
    /// # Panics
    ///
    /// Panics if `backward` has not been called since the last recorded op.
    pub fn grad(&self, v: Var) -> &Matrix {
        assert!(self.grads_valid, "call backward() before grad()");
        &self.grads[v.0]
    }

    // --- differentiable ops ------------------------------------------------

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// `aᵀ @ b` (used for pointer scores `vᵀ tanh(...)`).
    pub fn matmul_ta(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul_ta(&self.nodes[b.0].value);
        self.push(v, Op::MatMulTA(a, b))
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (Hadamard).
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(v, Op::MulElem(a, b))
    }

    /// `a * k` for a constant scalar `k` (no gradient flows into `k`).
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * k);
        self.push(v, Op::Scale(a, k))
    }

    /// Adds column vector `v` to every column of `m` (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics unless `v` is `(m.rows, 1)`.
    pub fn add_col_broadcast(&mut self, m: Var, v: Var) -> Var {
        let (mm, vv) = (&self.nodes[m.0].value, &self.nodes[v.0].value);
        assert_eq!(vv.shape(), (mm.rows(), 1), "broadcast vector shape");
        let mut out = mm.clone();
        for r in 0..out.rows() {
            let b = vv.get(r, 0);
            for c in 0..out.cols() {
                out.set(r, c, out.get(r, c) + b);
            }
        }
        self.push(out, Op::AddColBroadcast(m, v))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Stacks `a` on top of `b` (same column count).
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(av.cols(), bv.cols(), "concat column mismatch");
        let mut data = Vec::with_capacity(av.len() + bv.len());
        data.extend_from_slice(av.as_slice());
        data.extend_from_slice(bv.as_slice());
        let v = Matrix::from_vec(av.rows() + bv.rows(), av.cols(), data);
        self.push(v, Op::ConcatRows(a, b))
    }

    /// Concatenates column vectors (or equal-height matrices) side by
    /// side — e.g. assembling the encoder context matrix `C` from
    /// per-step hidden states.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is empty or heights differ.
    pub fn concat_cols(&mut self, cols: &[Var]) -> Var {
        assert!(!cols.is_empty(), "concat_cols needs at least one column");
        let rows = self.nodes[cols[0].0].value.rows();
        let total_cols: usize = cols
            .iter()
            .map(|&c| {
                let m = &self.nodes[c.0].value;
                assert_eq!(m.rows(), rows, "column height mismatch");
                m.cols()
            })
            .sum();
        let mut out = Matrix::zeros(rows, total_cols);
        let mut at = 0;
        for &c in cols {
            let m = &self.nodes[c.0].value;
            for r in 0..rows {
                for cc in 0..m.cols() {
                    out.set(r, at + cc, m.get(r, cc));
                }
            }
            at += m.cols();
        }
        self.push(out, Op::ConcatCols(cols.to_vec()))
    }

    /// Column `col` of `a` as a column vector (e.g. extracting one node's
    /// projected embedding from the `[h, n]` projection matrix).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn slice_col(&mut self, a: Var, col: usize) -> Var {
        let av = &self.nodes[a.0].value;
        assert!(col < av.cols(), "column out of range");
        let mut out = Matrix::zeros(av.rows(), 1);
        for r in 0..av.rows() {
            out.set(r, 0, av.get(r, col));
        }
        self.push(out, Op::SliceCol(a, col))
    }

    /// Rows `start..start + len` of `a` (LSTM gate splitting).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `a`'s rows.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = &self.nodes[a.0].value;
        assert!(start + len <= av.rows(), "row slice out of range");
        let cols = av.cols();
        let data = av.as_slice()[start * cols..(start + len) * cols].to_vec();
        let v = Matrix::from_vec(len, cols, data);
        self.push(v, Op::SliceRows(a, start, len))
    }

    /// Transposed copy of `a`.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Sum of all elements, as a `(1, 1)` scalar.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.push(v, Op::Sum(a))
    }

    /// Masked softmax over a column vector; `mask[i] == true` excludes
    /// entry `i` (its probability is exactly 0).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a column vector of `mask.len()` rows, or if
    /// every entry is masked.
    pub fn softmax_masked(&mut self, a: Var, mask: &[bool]) -> Var {
        let v = masked_softmax(&self.nodes[a.0].value, mask);
        self.push(v, Op::SoftmaxMaskedCol(a, mask.to_vec()))
    }

    /// Masked log-softmax over a column vector; masked entries get
    /// [`NEG_INF_LOGIT`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`softmax_masked`](Tape::softmax_masked).
    pub fn log_softmax_masked(&mut self, a: Var, mask: &[bool]) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.cols(), 1, "log_softmax on column vectors");
        assert_eq!(av.rows(), mask.len(), "mask length");
        let lse = masked_log_sum_exp(av, mask);
        let mut out = Matrix::zeros(av.rows(), 1);
        for (i, &masked) in mask.iter().enumerate() {
            let y = if masked {
                NEG_INF_LOGIT
            } else {
                av.get(i, 0) - lse
            };
            out.set(i, 0, y);
        }
        self.push(out, Op::LogSoftmaxMaskedCol(a, mask.to_vec()))
    }

    /// Element `i` of a column vector, as a `(1, 1)` scalar.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a column vector or `i` is out of range.
    pub fn pick(&mut self, a: Var, i: usize) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.cols(), 1, "pick on column vectors");
        let v = Matrix::from_vec(1, 1, vec![av.get(i, 0)]);
        self.push(v, Op::Pick(a, i))
    }

    // --- batched primitives ------------------------------------------------
    //
    // These operate on matrices whose columns are batch lanes: a batch of
    // `B` graphs with `n` nodes each is laid out either as `[h, B]` (one
    // state column per graph) or as a graph-major block matrix `[h, B*n]`
    // (columns `g*n..(g+1)*n` belong to graph `g`). Per-column arithmetic
    // matches the unbatched ops exactly (same accumulation order), so a
    // batched decode reproduces the serial decode bit for bit.

    /// Gathers columns `cols[j]` of `a` into a new `[rows, cols.len()]`
    /// matrix (e.g. one node embedding per batch lane); the forward
    /// kernel is [`Matrix::gather_cols`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_cols(&mut self, a: Var, cols: &[usize]) -> Var {
        let out = self.nodes[a.0].value.gather_cols(cols);
        self.push(out, Op::GatherCols(a, cols.to_vec()))
    }

    /// Adds column `g` of `q` (`[h, B]`) to every column of block `g` of
    /// `m` (`[h, B*block]`) — the batched form of
    /// [`add_col_broadcast`](Tape::add_col_broadcast).
    ///
    /// # Panics
    ///
    /// Panics unless `m.cols() == q.cols() * block` and heights match.
    pub fn add_block_broadcast(&mut self, m: Var, q: Var, block: usize) -> Var {
        let (mm, qq) = (&self.nodes[m.0].value, &self.nodes[q.0].value);
        assert_eq!(mm.rows(), qq.rows(), "broadcast height mismatch");
        assert_eq!(mm.cols(), qq.cols() * block, "block count mismatch");
        let mut out = mm.clone();
        for r in 0..out.rows() {
            for g in 0..qq.cols() {
                let b = qq.get(r, g);
                for i in 0..block {
                    let c = g * block + i;
                    out.set(r, c, out.get(r, c) + b);
                }
            }
        }
        self.push(out, Op::AddBlockBroadcast(m, q, block))
    }

    /// Reinterprets a `[1, B*rows]` row as a `[rows, B]` matrix with
    /// `out[i, g] = a[0, g*rows + i]` (per-graph score columns from a
    /// blocked `vᵀ tanh(..)` contraction).
    ///
    /// # Panics
    ///
    /// Panics unless `a` is a single row whose length divides by `rows`.
    pub fn unflatten_row(&mut self, a: Var, rows: usize) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), 1, "unflatten_row takes a row vector");
        assert_eq!(av.cols() % rows, 0, "row length must divide by rows");
        let b = av.cols() / rows;
        let mut out = Matrix::zeros(rows, b);
        for g in 0..b {
            for i in 0..rows {
                out.set(i, g, av.get(0, g * rows + i));
            }
        }
        self.push(out, Op::UnflattenRow(a, rows))
    }

    /// Per-column masked softmax over `[n, B]`; `masks[g*n + i]` masks row
    /// `i` of column `g`. Each column reproduces
    /// [`softmax_masked`](Tape::softmax_masked) exactly.
    ///
    /// # Panics
    ///
    /// Panics on mask-length mismatch or a fully masked column.
    pub fn softmax_masked_cols(&mut self, a: Var, masks: &[bool]) -> Var {
        let v = masked_softmax_cols(&self.nodes[a.0].value, masks);
        self.push(v, Op::SoftmaxMaskedCols(a, masks.to_vec()))
    }

    /// Per-column masked log-softmax over `[n, B]` (masked entries get
    /// [`NEG_INF_LOGIT`]); the batched form of
    /// [`log_softmax_masked`](Tape::log_softmax_masked).
    ///
    /// # Panics
    ///
    /// Panics on mask-length mismatch or a fully masked column.
    pub fn log_softmax_masked_cols(&mut self, a: Var, masks: &[bool]) -> Var {
        let av = &self.nodes[a.0].value;
        let (n, b) = av.shape();
        assert_eq!(masks.len(), n * b, "mask length");
        let mut out = Matrix::zeros(n, b);
        for g in 0..b {
            let mask = &masks[g * n..(g + 1) * n];
            let lse = col_masked_log_sum_exp(av, g, mask);
            for (i, &masked) in mask.iter().enumerate() {
                let y = if masked {
                    NEG_INF_LOGIT
                } else {
                    av.get(i, g) - lse
                };
                out.set(i, g, y);
            }
        }
        self.push(out, Op::LogSoftmaxMaskedCols(a, masks.to_vec()))
    }

    /// Picks entry `indices[g]` of every column `g`, producing a `[1, B]`
    /// row (the chosen log-probability per batch lane).
    ///
    /// # Panics
    ///
    /// Panics unless `indices.len() == a.cols()` and indices are in range.
    pub fn pick_cols(&mut self, a: Var, indices: &[usize]) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(indices.len(), av.cols(), "one index per column");
        let mut out = Matrix::zeros(1, av.cols());
        for (g, &i) in indices.iter().enumerate() {
            assert!(i < av.rows(), "pick index out of range");
            out.set(0, g, av.get(i, g));
        }
        self.push(out, Op::PickCols(a, indices.to_vec()))
    }

    /// Block-diagonal matrix-vector product (the batched glimpse
    /// contraction); the forward kernel is [`Matrix::block_matvec`].
    ///
    /// # Panics
    ///
    /// Panics unless `c.cols() == p.rows() * p.cols()`.
    pub fn block_matvec(&mut self, c: Var, p: Var) -> Var {
        let out = self.nodes[c.0].value.block_matvec(&self.nodes[p.0].value);
        self.push(out, Op::BlockMatVec(c, p))
    }

    // --- backward ----------------------------------------------------------

    /// Runs reverse-mode accumulation from scalar `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `(1, 1)`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "scalar loss");
        self.grads = self
            .nodes
            .iter()
            .map(|n| Matrix::zeros(n.value.rows(), n.value.cols()))
            .collect();
        self.grads[loss.0].set(0, 0, 1.0);
        for idx in (0..self.nodes.len()).rev() {
            let g = std::mem::replace(&mut self.grads[idx], Matrix::zeros(0, 0));
            if g.max_abs() == 0.0 {
                self.grads[idx] = g;
                continue;
            }
            let op = self.nodes[idx].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = g.matmul_tb(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.matmul_ta(&g);
                    self.grads[a.0].add_assign(&da);
                    self.grads[b.0].add_assign(&db);
                }
                Op::MatMulTA(a, b) => {
                    // C = Aᵀ B: dA = B gᵀ, dB = A g.
                    let da = self.nodes[b.0].value.matmul_tb(&g);
                    let db = self.nodes[a.0].value.matmul(&g);
                    self.grads[a.0].add_assign(&da);
                    self.grads[b.0].add_assign(&db);
                }
                Op::Add(a, b) => {
                    self.grads[a.0].add_assign(&g);
                    self.grads[b.0].add_assign(&g);
                }
                Op::Sub(a, b) => {
                    self.grads[a.0].add_assign(&g);
                    let neg = g.map(|x| -x);
                    self.grads[b.0].add_assign(&neg);
                }
                Op::MulElem(a, b) => {
                    let da = g.zip(&self.nodes[b.0].value, |x, y| x * y);
                    let db = g.zip(&self.nodes[a.0].value, |x, y| x * y);
                    self.grads[a.0].add_assign(&da);
                    self.grads[b.0].add_assign(&db);
                }
                Op::Scale(a, k) => {
                    let da = g.map(|x| x * k);
                    self.grads[a.0].add_assign(&da);
                }
                Op::AddColBroadcast(m, v) => {
                    self.grads[m.0].add_assign(&g);
                    let mut dv = Matrix::zeros(g.rows(), 1);
                    for r in 0..g.rows() {
                        let mut s = 0.0;
                        for c in 0..g.cols() {
                            s += g.get(r, c);
                        }
                        dv.set(r, 0, s);
                    }
                    self.grads[v.0].add_assign(&dv);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let da = g.zip(y, |gi, yi| gi * yi * (1.0 - yi));
                    self.grads[a.0].add_assign(&da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let da = g.zip(y, |gi, yi| gi * (1.0 - yi * yi));
                    self.grads[a.0].add_assign(&da);
                }
                Op::Relu(a) => {
                    let y = &self.nodes[idx].value;
                    let da = g.zip(y, |gi, yi| if yi > 0.0 { gi } else { 0.0 });
                    self.grads[a.0].add_assign(&da);
                }
                Op::ConcatRows(a, b) => {
                    let ra = self.nodes[a.0].value.rows();
                    let cols = g.cols();
                    let (top, bot) = g.as_slice().split_at(ra * cols);
                    let da = Matrix::from_vec(ra, cols, top.to_vec());
                    let db = Matrix::from_vec(g.rows() - ra, cols, bot.to_vec());
                    self.grads[a.0].add_assign(&da);
                    self.grads[b.0].add_assign(&db);
                }
                Op::ConcatCols(cols) => {
                    let mut at = 0;
                    for &c in &cols {
                        let m_cols = self.nodes[c.0].value.cols();
                        let rows = g.rows();
                        let mut dc = Matrix::zeros(rows, m_cols);
                        for r in 0..rows {
                            for cc in 0..m_cols {
                                dc.set(r, cc, g.get(r, at + cc));
                            }
                        }
                        self.grads[c.0].add_assign(&dc);
                        at += m_cols;
                    }
                }
                Op::SliceCol(a, col) => {
                    let ga = &mut self.grads[a.0];
                    for r in 0..g.rows() {
                        let cur = ga.get(r, col);
                        ga.set(r, col, cur + g.get(r, 0));
                    }
                }
                Op::SliceRows(a, start, len) => {
                    let cols = g.cols();
                    let ga = &mut self.grads[a.0];
                    for r in 0..len {
                        for c in 0..cols {
                            let cur = ga.get(start + r, c);
                            ga.set(start + r, c, cur + g.get(r, c));
                        }
                    }
                }
                Op::Transpose(a) => {
                    let da = g.transpose();
                    self.grads[a.0].add_assign(&da);
                }
                Op::Sum(a) => {
                    let s = g.get(0, 0);
                    let shape = self.nodes[a.0].value.shape();
                    let da = Matrix::full(shape.0, shape.1, s);
                    self.grads[a.0].add_assign(&da);
                }
                Op::SoftmaxMaskedCol(a, mask) => {
                    let y = &self.nodes[idx].value;
                    let dot: f32 = (0..y.rows())
                        .filter(|&i| !mask[i])
                        .map(|i| g.get(i, 0) * y.get(i, 0))
                        .sum();
                    let mut da = Matrix::zeros(y.rows(), 1);
                    for (i, &masked) in mask.iter().enumerate() {
                        if !masked {
                            da.set(i, 0, y.get(i, 0) * (g.get(i, 0) - dot));
                        }
                    }
                    self.grads[a.0].add_assign(&da);
                }
                Op::LogSoftmaxMaskedCol(a, mask) => {
                    let y = &self.nodes[idx].value;
                    let gsum: f32 = (0..y.rows())
                        .filter(|&i| !mask[i])
                        .map(|i| g.get(i, 0))
                        .sum();
                    let mut da = Matrix::zeros(y.rows(), 1);
                    for (i, &masked) in mask.iter().enumerate() {
                        if !masked {
                            da.set(i, 0, g.get(i, 0) - y.get(i, 0).exp() * gsum);
                        }
                    }
                    self.grads[a.0].add_assign(&da);
                }
                Op::Pick(a, i) => {
                    let s = g.get(0, 0);
                    let cur = self.grads[a.0].get(i, 0);
                    self.grads[a.0].set(i, 0, cur + s);
                }
                Op::GatherCols(a, cols) => {
                    let ga = &mut self.grads[a.0];
                    for (j, &c) in cols.iter().enumerate() {
                        for r in 0..g.rows() {
                            let cur = ga.get(r, c);
                            ga.set(r, c, cur + g.get(r, j));
                        }
                    }
                }
                Op::AddBlockBroadcast(m, q, block) => {
                    self.grads[m.0].add_assign(&g);
                    let b = g.cols() / block;
                    let mut dq = Matrix::zeros(g.rows(), b);
                    for r in 0..g.rows() {
                        for gg in 0..b {
                            let mut s = 0.0;
                            for i in 0..block {
                                s += g.get(r, gg * block + i);
                            }
                            dq.set(r, gg, s);
                        }
                    }
                    self.grads[q.0].add_assign(&dq);
                }
                Op::UnflattenRow(a, rows) => {
                    let ga = &mut self.grads[a.0];
                    for gg in 0..g.cols() {
                        for i in 0..rows {
                            let c = gg * rows + i;
                            let cur = ga.get(0, c);
                            ga.set(0, c, cur + g.get(i, gg));
                        }
                    }
                }
                Op::SoftmaxMaskedCols(a, masks) => {
                    let y = &self.nodes[idx].value;
                    let n = y.rows();
                    let mut da = Matrix::zeros(n, y.cols());
                    for gg in 0..y.cols() {
                        let mask = &masks[gg * n..(gg + 1) * n];
                        let dot: f32 = (0..n)
                            .filter(|&i| !mask[i])
                            .map(|i| g.get(i, gg) * y.get(i, gg))
                            .sum();
                        for (i, &masked) in mask.iter().enumerate() {
                            if !masked {
                                da.set(i, gg, y.get(i, gg) * (g.get(i, gg) - dot));
                            }
                        }
                    }
                    self.grads[a.0].add_assign(&da);
                }
                Op::LogSoftmaxMaskedCols(a, masks) => {
                    let y = &self.nodes[idx].value;
                    let n = y.rows();
                    let mut da = Matrix::zeros(n, y.cols());
                    for gg in 0..y.cols() {
                        let mask = &masks[gg * n..(gg + 1) * n];
                        let gsum: f32 = (0..n).filter(|&i| !mask[i]).map(|i| g.get(i, gg)).sum();
                        for (i, &masked) in mask.iter().enumerate() {
                            if !masked {
                                da.set(i, gg, g.get(i, gg) - y.get(i, gg).exp() * gsum);
                            }
                        }
                    }
                    self.grads[a.0].add_assign(&da);
                }
                Op::PickCols(a, indices) => {
                    let ga = &mut self.grads[a.0];
                    for (gg, &i) in indices.iter().enumerate() {
                        let cur = ga.get(i, gg);
                        ga.set(i, gg, cur + g.get(0, gg));
                    }
                }
                Op::BlockMatVec(c, p) => {
                    let (n, b) = self.nodes[p.0].value.shape();
                    let h = g.rows();
                    {
                        let pv = &self.nodes[p.0].value;
                        let mut dc = Matrix::zeros(h, n * b);
                        for gg in 0..b {
                            for r in 0..h {
                                let gr = g.get(r, gg);
                                for i in 0..n {
                                    dc.set(r, gg * n + i, gr * pv.get(i, gg));
                                }
                            }
                        }
                        self.grads[c.0].add_assign(&dc);
                    }
                    {
                        let cv = &self.nodes[c.0].value;
                        let mut dp = Matrix::zeros(n, b);
                        for gg in 0..b {
                            for i in 0..n {
                                let mut s = 0.0;
                                for r in 0..h {
                                    s += cv.get(r, gg * n + i) * g.get(r, gg);
                                }
                                dp.set(i, gg, s);
                            }
                        }
                        self.grads[p.0].add_assign(&dp);
                    }
                }
            }
            self.grads[idx] = g;
        }
        self.grads_valid = true;
    }
}

/// Masked softmax over a column vector (shared by the tape op and by
/// gradient-free inference paths).
///
/// # Panics
///
/// Panics if `x` is not a column vector matching `mask`, or if every entry
/// is masked.
pub fn masked_softmax(x: &Matrix, mask: &[bool]) -> Matrix {
    assert_eq!(x.cols(), 1, "softmax on column vectors");
    assert_eq!(x.rows(), mask.len(), "mask length");
    assert!(mask.iter().any(|&m| !m), "all entries masked");
    let mx = (0..x.rows())
        .filter(|&i| !mask[i])
        .map(|i| x.get(i, 0))
        .fold(f32::NEG_INFINITY, f32::max);
    let mut out = Matrix::zeros(x.rows(), 1);
    let mut z = 0.0;
    for (i, &masked) in mask.iter().enumerate() {
        if !masked {
            let e = (x.get(i, 0) - mx).exp();
            out.set(i, 0, e);
            z += e;
        }
    }
    for i in 0..x.rows() {
        out.set(i, 0, out.get(i, 0) / z);
    }
    out
}

/// Per-column masked softmax over `[n, B]` (`masks[g*n + i]` masks row `i`
/// of column `g`); each column matches [`masked_softmax`] bit for bit.
/// Shared by the tape op and gradient-free batched inference.
///
/// # Panics
///
/// Panics on mask-length mismatch or a fully masked column.
pub fn masked_softmax_cols(x: &Matrix, masks: &[bool]) -> Matrix {
    let (n, b) = x.shape();
    assert_eq!(masks.len(), n * b, "mask length");
    let mut out = Matrix::zeros(n, b);
    for g in 0..b {
        let mask = &masks[g * n..(g + 1) * n];
        assert!(mask.iter().any(|&m| !m), "all entries masked");
        let mx = (0..n)
            .filter(|&i| !mask[i])
            .map(|i| x.get(i, g))
            .fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for (i, &masked) in mask.iter().enumerate() {
            if !masked {
                let e = (x.get(i, g) - mx).exp();
                out.set(i, g, e);
                z += e;
            }
        }
        for i in 0..n {
            out.set(i, g, out.get(i, g) / z);
        }
    }
    out
}

fn col_masked_log_sum_exp(x: &Matrix, col: usize, mask: &[bool]) -> f32 {
    assert!(mask.iter().any(|&m| !m), "all entries masked");
    let mx = (0..x.rows())
        .filter(|&i| !mask[i])
        .map(|i| x.get(i, col))
        .fold(f32::NEG_INFINITY, f32::max);
    let z: f32 = (0..x.rows())
        .filter(|&i| !mask[i])
        .map(|i| (x.get(i, col) - mx).exp())
        .sum();
    mx + z.ln()
}

fn masked_log_sum_exp(x: &Matrix, mask: &[bool]) -> f32 {
    assert!(mask.iter().any(|&m| !m), "all entries masked");
    let mx = (0..x.rows())
        .filter(|&i| !mask[i])
        .map(|i| x.get(i, 0))
        .fold(f32::NEG_INFINITY, f32::max);
    let z: f32 = (0..x.rows())
        .filter(|&i| !mask[i])
        .map(|i| (x.get(i, 0) - mx).exp())
        .sum();
    mx + z.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks d loss / d leaf against central finite differences.
    fn finite_diff_check(build: impl Fn(&mut Tape, Var) -> Var, input: Matrix, tol: f32) {
        let eps = 1e-3f32;
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).clone();

        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f = |m: Matrix| {
                let mut t = Tape::new();
                let v = t.leaf(m);
                let l = build(&mut t, v);
                t.value(l).get(0, 0)
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "element {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn test_input(n: usize) -> Matrix {
        Matrix::from_vec(n, 1, (0..n).map(|i| 0.3 * i as f32 - 0.7).collect())
    }

    #[test]
    fn grad_tanh() {
        finite_diff_check(
            |t, x| {
                let y = t.tanh(x);
                t.sum(y)
            },
            test_input(4),
            1e-2,
        );
    }

    #[test]
    fn grad_sigmoid() {
        finite_diff_check(
            |t, x| {
                let y = t.sigmoid(x);
                t.sum(y)
            },
            test_input(4),
            1e-2,
        );
    }

    #[test]
    fn grad_relu() {
        // offset inputs away from the kink at 0
        let input = Matrix::from_vec(4, 1, vec![-1.3, -0.4, 0.6, 1.9]);
        finite_diff_check(
            |t, x| {
                let y = t.relu(x);
                t.sum(y)
            },
            input,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_both_sides() {
        let w = Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32) * 0.1 - 0.5).collect());
        finite_diff_check(
            move |t, x| {
                let wv = t.leaf(w.clone());
                let y = t.matmul(wv, x);
                let y2 = t.tanh(y);
                t.sum(y2)
            },
            test_input(4),
            1e-2,
        );
        // and gradient w.r.t. the matrix side
        let xfix = test_input(4);
        finite_diff_check(
            move |t, w| {
                let xv = t.leaf(xfix.clone());
                let y = t.matmul(w, xv);
                t.sum(y)
            },
            Matrix::from_vec(2, 4, (0..8).map(|i| 0.2 * i as f32 - 0.6).collect()),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_ta() {
        let b = Matrix::from_vec(4, 2, (0..8).map(|i| 0.15 * i as f32 - 0.4).collect());
        finite_diff_check(
            move |t, a| {
                let bv = t.leaf(b.clone());
                let c = t.matmul_ta(a, bv);
                let c2 = t.tanh(c);
                t.sum(c2)
            },
            Matrix::from_vec(4, 3, (0..12).map(|i| 0.1 * i as f32 - 0.5).collect()),
            1e-2,
        );
    }

    #[test]
    fn grad_add_sub_mul_scale() {
        finite_diff_check(
            |t, x| {
                let a = t.scale(x, 1.7);
                let b = t.mul_elem(a, x);
                let c = t.sub(b, x);
                let d = t.add(c, x);
                t.sum(d)
            },
            test_input(5),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_slice_transpose() {
        finite_diff_check(
            |t, x| {
                let c = t.concat_rows(x, x);
                let s = t.slice_rows(c, 2, 4);
                let tr = t.transpose(s);
                let tr2 = t.transpose(tr);
                let y = t.tanh(tr2);
                t.sum(y)
            },
            test_input(4),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_cols() {
        finite_diff_check(
            |t, x| {
                let y = t.scale(x, 2.0);
                let m = t.concat_cols(&[x, y, x]);
                let m2 = t.tanh(m);
                t.sum(m2)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn concat_cols_layout() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::col_from_slice(&[1.0, 2.0]));
        let b = t.leaf(Matrix::col_from_slice(&[3.0, 4.0]));
        let c = t.concat_cols(&[a, b]);
        let v = t.value(c);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.get(0, 1), 3.0);
        assert_eq!(v.get(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn concat_cols_empty_panics() {
        let mut t = Tape::new();
        let _ = t.concat_cols(&[]);
    }

    #[test]
    fn grad_slice_col() {
        finite_diff_check(
            |t, x| {
                let m = t.concat_cols(&[x, x]);
                let c = t.slice_col(m, 1);
                let y = t.tanh(c);
                t.sum(y)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn grad_add_col_broadcast() {
        let m = Matrix::from_vec(3, 2, (0..6).map(|i| 0.1 * i as f32).collect());
        finite_diff_check(
            move |t, v| {
                let mv = t.leaf(m.clone());
                let y = t.add_col_broadcast(mv, v);
                let y2 = t.tanh(y);
                t.sum(y2)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_masked() {
        let mask = vec![false, true, false, false];
        finite_diff_check(
            move |t, x| {
                let y = t.softmax_masked(x, &mask);
                let w = t.leaf(Matrix::col_from_slice(&[0.3, 0.0, -0.8, 1.2]));
                let p = t.mul_elem(y, w);
                t.sum(p)
            },
            test_input(4),
            1e-2,
        );
    }

    #[test]
    fn grad_log_softmax_masked_via_pick() {
        let mask = vec![false, false, true, false];
        finite_diff_check(
            move |t, x| {
                let y = t.log_softmax_masked(x, &mask);
                t.pick(y, 3)
            },
            test_input(4),
            1e-2,
        );
    }

    #[test]
    fn softmax_masked_sums_to_one_and_zeroes_masked() {
        let x = Matrix::col_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let y = masked_softmax(&x, &[false, true, false, true]);
        assert_eq!(y.get(1, 0), 0.0);
        assert_eq!(y.get(3, 0), 0.0);
        assert!((y.sum() - 1.0).abs() < 1e-6);
        assert!(y.get(2, 0) > y.get(0, 0));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Matrix::col_from_slice(&[0.5, -1.0, 2.0]);
        let mask = [false, false, false];
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let ls = t.log_softmax_masked(xv, &mask);
        let sm = masked_softmax(&x, &mask);
        for i in 0..3 {
            assert!((t.value(ls).get(i, 0).exp() - sm.get(i, 0)).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "all entries masked")]
    fn softmax_all_masked_panics() {
        let x = Matrix::col_from_slice(&[1.0, 2.0]);
        let _ = masked_softmax(&x, &[true, true]);
    }

    #[test]
    #[should_panic(expected = "call backward")]
    fn grad_before_backward_panics() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(1, 1));
        let _ = t.grad(x);
    }

    #[test]
    fn gradient_accumulates_across_reuse() {
        // loss = sum(x + x) => dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::col_from_slice(&[1.0, 2.0]));
        let y = t.add(x, x);
        let l = t.sum(y);
        t.backward(l);
        assert_eq!(t.grad(x).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn grad_gather_cols() {
        finite_diff_check(
            |t, x| {
                let m = t.concat_cols(&[x, x, x]);
                let gathered = t.gather_cols(m, &[2, 0]);
                let y = t.tanh(gathered);
                t.sum(y)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn grad_add_block_broadcast() {
        let m = Matrix::from_vec(2, 6, (0..12).map(|i| 0.1 * i as f32 - 0.5).collect());
        finite_diff_check(
            move |t, q| {
                let mv = t.leaf(m.clone());
                let qm = t.concat_cols(&[q, q]); // [2, 2] query block
                let y = t.add_block_broadcast(mv, qm, 3);
                let y2 = t.tanh(y);
                t.sum(y2)
            },
            Matrix::col_from_slice(&[0.4, -0.2]),
            1e-2,
        );
    }

    #[test]
    fn grad_unflatten_and_pick_cols() {
        finite_diff_check(
            |t, x| {
                let r = t.transpose(x); // [1, 6]
                let m = t.unflatten_row(r, 3); // [3, 2]
                let picked = t.pick_cols(m, &[1, 2]); // [1, 2]
                let y = t.tanh(picked);
                t.sum(y)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_block_matvec_both_sides() {
        let p = Matrix::from_vec(3, 2, vec![0.2, 0.5, 0.3, 0.1, 0.5, 0.4]);
        finite_diff_check(
            move |t, c| {
                let pv = t.leaf(p.clone());
                let g = t.block_matvec(c, pv);
                let y = t.tanh(g);
                t.sum(y)
            },
            Matrix::from_vec(2, 6, (0..12).map(|i| 0.07 * i as f32 - 0.3).collect()),
            1e-2,
        );
        let c = Matrix::from_vec(2, 6, (0..12).map(|i| 0.07 * i as f32 - 0.3).collect());
        finite_diff_check(
            move |t, p| {
                let cv = t.leaf(c.clone());
                let m = t.concat_cols(&[p, p]); // [3, 2]
                let g = t.block_matvec(cv, m);
                let y = t.tanh(g);
                t.sum(y)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_masked_cols() {
        let masks = vec![false, true, false, false, false, true];
        finite_diff_check(
            move |t, x| {
                let m = t.concat_cols(&[x, x]); // [3, 2]
                let y = t.softmax_masked_cols(m, &masks);
                let w = t.leaf(Matrix::from_vec(3, 2, vec![0.3, -0.1, 0.0, 0.7, -0.8, 1.2]));
                let p = t.mul_elem(y, w);
                t.sum(p)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn grad_log_softmax_masked_cols() {
        let masks = vec![false, false, true, true, false, false];
        finite_diff_check(
            move |t, x| {
                let m = t.concat_cols(&[x, x]); // [3, 2]
                let y = t.log_softmax_masked_cols(m, &masks);
                let picked = t.pick_cols(y, &[1, 2]);
                t.sum(picked)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn batched_softmax_columns_match_unbatched() {
        let a = Matrix::col_from_slice(&[0.4, -1.2, 2.0, 0.1]);
        let b = Matrix::col_from_slice(&[1.5, 0.0, -0.7, 0.9]);
        let mask_a = vec![false, true, false, false];
        let mask_b = vec![false, false, false, true];
        let mut stacked = Matrix::zeros(4, 2);
        for i in 0..4 {
            stacked.set(i, 0, a.get(i, 0));
            stacked.set(i, 1, b.get(i, 0));
        }
        let masks: Vec<bool> = mask_a.iter().chain(&mask_b).copied().collect();
        let batched = masked_softmax_cols(&stacked, &masks);
        let sa = masked_softmax(&a, &mask_a);
        let sb = masked_softmax(&b, &mask_b);
        for i in 0..4 {
            assert_eq!(batched.get(i, 0).to_bits(), sa.get(i, 0).to_bits());
            assert_eq!(batched.get(i, 1).to_bits(), sb.get(i, 0).to_bits());
        }
        // log-softmax path too
        let mut t = Tape::new();
        let sv = t.leaf(stacked);
        let ls_cols = t.log_softmax_masked_cols(sv, &masks);
        let av = t.leaf(a);
        let ls_a = t.log_softmax_masked(av, &mask_a);
        for i in 0..4 {
            assert_eq!(
                t.value(ls_cols).get(i, 0).to_bits(),
                t.value(ls_a).get(i, 0).to_bits()
            );
        }
    }

    #[test]
    fn block_matvec_matches_per_block_matmul() {
        let c = Matrix::from_vec(2, 6, (0..12).map(|i| 0.3 * i as f32 - 1.0).collect());
        let p = Matrix::from_vec(3, 2, vec![0.2, 0.5, 0.3, 0.1, 0.5, 0.4]);
        let mut t = Tape::new();
        let cv = t.leaf(c.clone());
        let pv = t.leaf(p.clone());
        let out = t.block_matvec(cv, pv);
        for g in 0..2 {
            let mut block = Matrix::zeros(2, 3);
            for r in 0..2 {
                for i in 0..3 {
                    block.set(r, i, c.get(r, g * 3 + i));
                }
            }
            let mut col = Matrix::zeros(3, 1);
            for i in 0..3 {
                col.set(i, 0, p.get(i, g));
            }
            let expect = block.matmul(&col);
            for r in 0..2 {
                assert_eq!(t.value(out).get(r, g).to_bits(), expect.get(r, 0).to_bits());
            }
        }
    }

    #[test]
    fn full_lstm_attention_chain_gradcheck() {
        // One LSTM-like gate computation + additive attention scores,
        // differentiated w.r.t. the input vector.
        let hidden = 3;
        let wmat = Matrix::from_vec(
            4 * hidden,
            2 * hidden,
            (0..4 * hidden * 2 * hidden)
                .map(|i| ((i * 37) % 19) as f32 * 0.02 - 0.2)
                .collect(),
        );
        let ctx = Matrix::from_vec(
            hidden,
            4,
            (0..hidden * 4).map(|i| 0.1 * i as f32 - 0.5).collect(),
        );
        finite_diff_check(
            move |t, x| {
                let w = t.leaf(wmat.clone());
                let h0 = t.leaf(Matrix::zeros(hidden, 1));
                let xin = t.concat_rows(x, h0);
                let z = t.matmul(w, xin);
                let i = t.slice_rows(z, 0, hidden);
                let f = t.slice_rows(z, hidden, hidden);
                let g = t.slice_rows(z, 2 * hidden, hidden);
                let o = t.slice_rows(z, 3 * hidden, hidden);
                let ig = t.sigmoid(i);
                let fg = t.sigmoid(f);
                let gg = t.tanh(g);
                let og = t.sigmoid(o);
                let c = t.mul_elem(ig, gg);
                let _ = fg;
                let ct = t.tanh(c);
                let h = t.mul_elem(og, ct);
                // attention scores over 4 context columns
                let cmat = t.leaf(ctx.clone());
                let scores_row = t.matmul_ta(h, cmat);
                let scores = t.transpose(scores_row);
                let probs = t.softmax_masked(scores, &[false; 4]);
                let glimpse = t.matmul(cmat, probs);
                let y = t.tanh(glimpse);
                t.sum(y)
            },
            test_input(3),
            2e-2,
        );
    }
}
