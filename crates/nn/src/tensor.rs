//! Dense row-major `f32` matrix used by the autodiff tape.
//!
//! Column vectors are `(n, 1)` matrices; scalars are `(1, 1)`. The
//! operations here are the *non*-differentiable building blocks; the
//! differentiable graph lives in [`crate::tape`].

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Column vector from a slice.
    pub fn col_from_slice(v: &[f32]) -> Self {
        Matrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// `self @ other` (naive ikj matmul, adequate for the model sizes
    /// used by RESPECT).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        if n == 1 {
            // fast matvec path (dominates LSTM inference)
            let mut out = Matrix::zeros(m, 1);
            let x = other.data.as_slice();
            for i in 0..m {
                let row = &self.data[i * k..(i + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in row.iter().zip(x) {
                    acc += a * b;
                }
                out.data[i] = acc;
            }
            return out;
        }
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_ta(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_ta row dimension");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let arow = &self.data[p * m..(p + 1) * m];
            let brow = &other.data[p * n..(p + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_tb(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_tb col dimension");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Gathers columns `cols[j]` into a new `[rows, cols.len()]` matrix.
    /// Shared forward kernel of the batched tape op and the gradient-free
    /// batched decode (their bitwise agreement depends on sharing it).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_cols(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for (j, &c) in cols.iter().enumerate() {
            assert!(c < self.cols, "gather column out of range");
            for r in 0..self.rows {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Block-diagonal matrix-vector product: with `self` stacking `B`
    /// blocks `[C_0 | C_1 | ...] ∈ [h, B*n]` and `p ∈ [n, B]`, returns
    /// `[h, B]` whose column `g` is `C_g @ p[:, g]`. Accumulation order
    /// per output element matches [`Matrix::matmul`]'s column-vector fast
    /// path; shared by the batched tape op and the gradient-free batched
    /// decode.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == p.rows() * p.cols()`.
    pub fn block_matvec(&self, p: &Matrix) -> Matrix {
        let (n, b) = p.shape();
        assert_eq!(self.cols, n * b, "context block count mismatch");
        let h = self.rows;
        let mut out = Matrix::zeros(h, b);
        for g in 0..b {
            for r in 0..h {
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += self.get(r, g * n + i) * p.get(i, g);
                }
                out.set(r, g, acc);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Elementwise binary zip.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0 for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_matches_hand_example() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_ta_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 4., 2., 5., 3., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        assert_eq!(a.matmul_ta(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_tb_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_tb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn sum_and_max_abs() {
        let m = Matrix::from_vec(1, 3, vec![-4.0, 1.0, 2.0]);
        assert_eq!(m.sum(), -1.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    proptest! {
        #[test]
        fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| ((seed.wrapping_mul(i as u64 + 1) % 97) as f32) - 48.0)
                .collect();
            let m = Matrix::from_vec(rows, cols, data);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn matmul_identity_preserves(n in 1usize..6, seed in 0u64..1000) {
            let mut id = Matrix::zeros(n, n);
            for i in 0..n { id.set(i, i, 1.0); }
            let data: Vec<f32> = (0..n * n)
                .map(|i| ((seed.wrapping_mul(i as u64 + 3) % 23) as f32) / 7.0)
                .collect();
            let m = Matrix::from_vec(n, n, data);
            prop_assert_eq!(m.matmul(&id), m.clone());
            prop_assert_eq!(id.matmul(&m), m);
        }

        #[test]
        fn matmul_is_linear_in_first_arg(n in 1usize..5, s in 0u64..100) {
            let gen = |off: u64| -> Matrix {
                Matrix::from_vec(n, n, (0..n*n)
                    .map(|i| ((s.wrapping_mul(i as u64 + off) % 13) as f32) - 6.0)
                    .collect())
            };
            let (a, b, c) = (gen(1), gen(2), gen(3));
            let lhs = {
                let mut ab = a.clone();
                ab.add_assign(&b);
                ab.matmul(&c)
            };
            let mut rhs = a.matmul(&c);
            rhs.add_assign(&b.matmul(&c));
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
