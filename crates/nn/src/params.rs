//! Named parameter collections and their per-tape bindings.
//!
//! [`Params`] owns the trainable weights of a model between steps; each
//! training step injects them onto a fresh [`Tape`] via
//! [`Params::bind`], producing [`Bindings`] that map names to tape
//! variables and, after `backward`, yield gradients aligned with the
//! parameter order for the optimizer.

use std::collections::HashMap;

use crate::tape::{Tape, Var};
use crate::tensor::Matrix;

/// Ordered, named collection of trainable matrices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Matrix>,
    index: HashMap<String, usize>,
}

impl Params {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — parameter names identify
    /// weights across save/load and optimizer state.
    pub fn insert(&mut self, name: impl Into<String>, value: Matrix) {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "duplicate parameter name {name:?}"
        );
        self.index.insert(name.clone(), self.values.len());
        self.names.push(name);
        self.values.push(value);
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Looks up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.index.get(name).map(|&i| &self.values[i])
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Matrix> {
        let i = *self.index.get(name)?;
        Some(&mut self.values[i])
    }

    /// Iterates over `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.names.iter().map(String::as_str).zip(&self.values)
    }

    /// Parameter value by dense index (registration order).
    pub fn value_at(&self, i: usize) -> &Matrix {
        &self.values[i]
    }

    /// Mutable parameter value by dense index.
    pub fn value_at_mut(&mut self, i: usize) -> &mut Matrix {
        &mut self.values[i]
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Injects every parameter as a leaf on `tape`.
    pub fn bind(&self, tape: &mut Tape) -> Bindings {
        let vars = self.values.iter().map(|m| tape.leaf(m.clone())).collect();
        Bindings {
            vars,
            index: self.index.clone(),
        }
    }
}

/// Tape variables for one [`Params::bind`] call.
#[derive(Debug, Clone)]
pub struct Bindings {
    vars: Vec<Var>,
    index: HashMap<String, usize>,
}

impl Bindings {
    /// The tape variable bound to parameter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` was never registered — a binding for an unknown
    /// parameter is a programming error, not a runtime condition.
    pub fn var(&self, name: &str) -> Var {
        self.vars[*self
            .index
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))]
    }

    /// All bound variables in registration order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Collects gradients for every parameter, in registration order.
    ///
    /// # Panics
    ///
    /// Panics if `tape.backward` has not run.
    pub fn grads(&self, tape: &Tape) -> Vec<Matrix> {
        self.vars.iter().map(|&v| tape.grad(v).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Params::new();
        p.insert("w", Matrix::zeros(2, 3));
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("w").unwrap().shape(), (2, 3));
        assert!(p.get("nope").is_none());
        assert_eq!(p.num_scalars(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.insert("w", Matrix::zeros(1, 1));
        p.insert("w", Matrix::zeros(1, 1));
    }

    #[test]
    fn bind_and_grads_align_with_order() {
        let mut p = Params::new();
        p.insert("a", Matrix::col_from_slice(&[1.0]));
        p.insert("b", Matrix::col_from_slice(&[2.0]));
        let mut tape = Tape::new();
        let binds = p.bind(&mut tape);
        // loss = 3*a + b  => da = 3, db = 1
        let a3 = tape.scale(binds.var("a"), 3.0);
        let s = tape.add(a3, binds.var("b"));
        let loss = tape.sum(s);
        tape.backward(loss);
        let grads = binds.grads(&tape);
        assert_eq!(grads[0].get(0, 0), 3.0);
        assert_eq!(grads[1].get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_binding_panics() {
        let p = Params::new();
        let mut tape = Tape::new();
        let binds = p.bind(&mut tape);
        let _ = binds.var("missing");
    }

    #[test]
    fn iter_preserves_registration_order() {
        let mut p = Params::new();
        p.insert("z", Matrix::zeros(1, 1));
        p.insert("a", Matrix::zeros(1, 1));
        let names: Vec<_> = p.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["z", "a"]);
    }
}
