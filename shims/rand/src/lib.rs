//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand 0.8` API the RESPECT sources use:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms and good enough for the
//! stochastic samplers and REINFORCE exploration used here. It is NOT a
//! cryptographic RNG and makes no stream-compatibility promise with the
//! real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range of any primitive integer or float type.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into full generator state (SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the primitive numeric types.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t;
                // rounding in the narrowing cast can land exactly on `end`;
                // keep the half-open contract
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for rand's
    /// `StdRng`). Same seed, same platform-independent stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn same_seed_same_stream() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_respect_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: usize = rng.gen_range(3..10);
                assert!((3..10).contains(&x));
                let y: i64 = rng.gen_range(-5..=5);
                assert!((-5..=5).contains(&y));
                let z: f64 = rng.gen_range(0.25..0.75);
                assert!((0.25..0.75).contains(&z));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..100 {
                assert!(!rng.gen_bool(0.0));
                assert!(rng.gen_bool(1.0));
            }
        }
    }
}
