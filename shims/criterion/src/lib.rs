//! Minimal, dependency-free stand-in for the slice of `criterion` the
//! bench suite uses: `Criterion::bench_function`, benchmark groups with
//! `sample_size` / `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (`harness = false`).
//!
//! The build environment cannot reach crates.io, so instead of criterion's
//! statistical machinery this harness runs a short warm-up, then measures
//! a capped batch of iterations and reports mean wall-clock per iteration.
//! Good enough to spot order-of-magnitude regressions and to keep
//! `cargo bench` runnable; not a statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut s = String::new();
        if let Some(g) = group {
            s.push_str(g);
            s.push('/');
        }
        s.push_str(&self.name);
        if let Some(p) = &self.parameter {
            s.push('/');
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, guarding results with
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // One warm-up call also tells us how expensive an iteration is, so the
    // measured batch can be capped to keep full `cargo bench` runs short.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // RESPECT_BENCH_BUDGET_MS caps the measured batch per benchmark
    // (default 200 ms); CI smoke runs set it low so benches stay honest
    // without stalling the pipeline.
    let budget_ms = std::env::var("RESPECT_BENCH_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(200);
    let budget = Duration::from_millis(budget_ms);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, sample_size as u128) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    println!(
        "bench: {label:<50} {:>12.3} µs/iter (n={iters})",
        mean * 1e6
    );
}

/// Top-level harness handle; the `criterion_main!`-generated `main`
/// constructs one and passes it to every registered group function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().render(None), self.default_sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &id.into().render(Some(&self.name)),
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.render(Some(&self.name)), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Registers a group of benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); accept and
            // ignore them like any external harness must.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_renders_ids() {
        let id = BenchmarkId::new("solver", 4);
        assert_eq!(id.render(Some("fig3")), "fig3/solver/4");
        let bare: BenchmarkId = "embed".into();
        assert_eq!(bare.render(None), "embed");
    }
}
