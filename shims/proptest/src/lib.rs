//! Minimal, dependency-free stand-in for the slice of `proptest` this
//! workspace uses.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset the test suites rely on:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in 0u64..100) {...} }`
//! * integer / float `Range` and `RangeInclusive` strategies,
//! * `prop_assert!`, `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Cases are sampled deterministically from a seed derived from the test
//! name, so failures reproduce exactly. There is no shrinking: a failing
//! case reports the case index and panics with the assertion message.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    type Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_numeric_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_numeric_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Stable FNV-1a hash of the test name: the per-property RNG seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fresh deterministic RNG for a named property.
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// Property-test assertion; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property-test equality assertion; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_eq!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        assert_eq!($lhs, $rhs, $($fmt)*)
    };
}

/// Declares deterministic property tests over range strategies.
///
/// Mirrors proptest's macro shape: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are drawn `name in strategy` per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (
        @with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)*
                    let run = || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{} failed in {}: inputs {}",
                            config.cases,
                            stringify!($name),
                            [$((stringify!($arg), format!("{:?}", $arg))),*]
                                .iter()
                                .map(|(k, v)| format!("{k} = {v}"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default())
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        );
    };
}

/// `use proptest::prelude::*;` — everything the test files expect.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in 0u64..=5) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(y <= 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in -3i32..3) {
            prop_assert_eq!(v.signum().abs() <= 1, true);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }
}
