//! Minimal stand-in for `serde`'s derive macros.
//!
//! The workspace persists models through its own binary format
//! (`respect_nn::serialize` / `respect_core::model_io`), so `serde` is
//! only referenced for `#[derive(Serialize, Deserialize)]` annotations on
//! plain data structs — nothing in the tree calls serde's traits. Since
//! the build environment cannot reach crates.io, this proc-macro crate
//! accepts those derives and expands to nothing, keeping the annotations
//! (and the upgrade path to real serde) intact.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted, expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted, expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
