//! Serving-sweep golden regression: the quick `reproduce -- serve`
//! sweep is pinned to a checked-in golden file, so any drift in the
//! serving runtime (batcher, admission, re-partitioner), the simulator
//! timing model, or the schedulers fails loudly instead of silently
//! shifting the reported numbers.
//!
//! The sweep uses deterministic `Periodic` arrivals, so every metric is
//! pure IEEE-754 arithmetic over the device constants and is compared
//! **bitwise** (matching the Table I golden discipline).
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! RESPECT_REGEN_GOLDEN=1 cargo test --test serve_golden
//! git diff tests/golden/serve_sweep.tsv   # review the drift!
//! ```

use std::fmt::Write as _;
use std::path::Path;

use respect_bench::experiments::{serve_sweep, ServeSweepRow};

const GOLDEN_PATH: &str = "tests/golden/serve_sweep.tsv";

fn render(rows: &[ServeSweepRow]) -> String {
    let mut out = String::from(
        "# model\tload\tpolicy\tadmitted\tshed\tswaps\tthr_bits\tp50_bits\tp99_bits\tthr_ips\tp99_ms\n\
         # Regenerate with RESPECT_REGEN_GOLDEN=1 cargo test --test serve_golden\n",
    );
    for r in rows {
        writeln!(
            out,
            "{}\t{:.1}\t{}\t{}\t{}\t{}\t{:016x}\t{:016x}\t{:016x}\t{:.17e}\t{:.17e}",
            r.name,
            r.load,
            r.policy,
            r.admitted,
            r.shed,
            r.swaps,
            r.throughput_ips.to_bits(),
            r.p50_ms.to_bits(),
            r.p99_ms.to_bits(),
            r.throughput_ips,
            r.p99_ms,
        )
        .unwrap();
    }
    out
}

#[test]
fn serve_sweep_matches_golden_file() {
    let rows = serve_sweep(true);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let rendered = render(&rows);
    if std::env::var_os("RESPECT_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH} with {} rows", rows.len());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{GOLDEN_PATH} unreadable ({e}); regenerate it"));
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let (want, got) = (strip(&golden), strip(&rendered));
    assert_eq!(
        want.len(),
        got.len(),
        "golden file has {} rows, run produced {}",
        want.len(),
        got.len()
    );
    let drifted: Vec<String> = want
        .iter()
        .zip(&got)
        .filter(|(w, g)| w != g)
        .map(|(w, g)| format!("pinned: {w}\n   got: {g}"))
        .collect();
    assert!(
        drifted.is_empty(),
        "serving sweep drift against {GOLDEN_PATH} — review and regenerate if intentional:\n{}",
        drifted.join("\n")
    );
}

#[test]
fn serve_sweep_sanity_runtime_dominates_static_under_overload() {
    // independent of the pinned values: at 2x load the full runtime
    // must deliver strictly higher goodput and a strictly lower p99
    // than the static deployment, and only the runtime may shed
    let rows = serve_sweep(true);
    let find = |policy: &str| {
        rows.iter()
            .find(|r| r.name == "DenseNet121" && r.load == 2.0 && r.policy == policy)
            .unwrap()
    };
    let (st, sv) = (find("static"), find("serve"));
    assert_eq!(st.shed, 0, "open admission never sheds");
    assert!(sv.shed > 0, "the runtime sheds under 2x overload");
    assert!(sv.throughput_ips > st.throughput_ips);
    assert!(
        sv.p99_ms < st.p99_ms / 5.0,
        "{} vs {}",
        sv.p99_ms,
        st.p99_ms
    );
}
