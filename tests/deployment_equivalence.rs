//! The `Deployment` facade is sugar, not a new engine: every method
//! must be **bitwise-identical** to the hand-wired calls it replaces.

use proptest::prelude::*;
use respect::core::{PolicyConfig, PtrNetPolicy, RespectScheduler};
use respect::deploy::{self, Deployment};
use respect::graph::models;
use respect::sched::registry::BuildOptions;
use respect::sched::Scheduler;
use respect::serve::{serve, AdmissionPolicy, BatchPolicy, ServeConfig, ServeTenant};
use respect::tpu::sim::{self, Arrivals, SimConfig, Workload};
use respect::tpu::{compile, device::DeviceSpec, exec};

/// Cheap deterministic partitioners safe to sweep over zoo models.
const PARTITIONERS: &[&str] = &["param-balanced", "op-balanced", "greedy", "hu", "force"];

fn model(i: usize) -> (&'static str, respect::graph::Dag) {
    match i % 3 {
        0 => ("Xception", models::xception()),
        1 => ("DenseNet121", models::densenet121()),
        _ => ("ResNet50", models::resnet50()),
    }
}

#[test]
fn build_matches_hand_wired_schedule_and_compile() {
    let spec = DeviceSpec::coral();
    let opts = BuildOptions::default().with_cost_model(spec.cost_model());
    for i in 0..3 {
        let (name, dag) = model(i);
        for stages in [4usize, 6] {
            for key in PARTITIONERS {
                let d = Deployment::of(&dag)
                    .stages(stages)
                    .device(spec)
                    .partitioner(*key)
                    .build()
                    .unwrap();
                let scheduler = deploy::registry(&spec).build(key, &opts).unwrap();
                let schedule = scheduler.schedule(&dag, stages).unwrap();
                let pipeline = compile::compile(&dag, &schedule, &spec).unwrap();
                assert_eq!(d.schedule(), &schedule, "{name}@{stages} {key}");
                assert_eq!(d.pipeline(), &pipeline, "{name}@{stages} {key}");
                assert_eq!(
                    d.objective().to_bits(),
                    spec.cost_model().objective(&dag, &schedule).to_bits(),
                    "{name}@{stages} {key}"
                );
            }
        }
    }
}

#[test]
fn injected_scheduler_matches_hand_wired_respect_path() {
    // an untrained policy is deterministic and trains nothing
    let policy = PtrNetPolicy::new(PolicyConfig::small(12));
    let spec = DeviceSpec::coral();
    let dag = models::xception();
    let d = Deployment::of(&dag)
        .stages(4)
        .device(spec)
        .scheduler(Box::new(
            RespectScheduler::new(policy.clone()).with_cost_model(spec.cost_model()),
        ))
        .build()
        .unwrap();
    let hand = RespectScheduler::new(policy)
        .with_cost_model(spec.cost_model())
        .schedule(&dag, 4)
        .unwrap();
    assert_eq!(d.schedule(), &hand);
    assert_eq!(d.scheduler_name(), "RESPECT");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulate_is_bitwise_exec_simulate(
        model_i in 0usize..3,
        stages in 1usize..=6,
        inferences in 1usize..400,
    ) {
        let (_, dag) = model(model_i);
        let spec = DeviceSpec::coral();
        let d = Deployment::of(&dag)
            .stages(stages)
            .device(spec)
            .partitioner("param-balanced")
            .build()
            .unwrap();
        let hand_pipeline = compile::compile(&dag, d.schedule(), &spec).unwrap();
        let facade = d.simulate(inferences).unwrap();
        let hand = exec::simulate(&hand_pipeline, &spec, inferences).unwrap();
        // PartialEq on the report compares every f64 field; identical
        // event streams make them bitwise-equal
        prop_assert_eq!(&facade, &hand);
        prop_assert_eq!(facade.total_s.to_bits(), hand.total_s.to_bits());
        prop_assert_eq!(
            facade.throughput_ips.to_bits(),
            hand.throughput_ips.to_bits()
        );
    }

    #[test]
    fn simulate_workloads_is_bitwise_sim_run(
        model_i in 0usize..3,
        stages in 2usize..=6,
        requests in 2usize..120,
        batch in 1usize..4,
        rate in 1.0f64..500.0,
        seed in 0u64..1 << 40,
        contended_u in 0usize..2,
    ) {
        let (_, dag) = model(model_i);
        let spec = DeviceSpec::coral();
        let d = Deployment::of(&dag)
            .stages(stages)
            .device(spec)
            .partitioner("greedy")
            .build()
            .unwrap();
        let cfg = if contended_u == 1 {
            SimConfig::contended()
        } else {
            SimConfig::uncontended()
        };
        let shape = |p: respect::tpu::CompiledPipeline| {
            Workload::new(p, requests)
                .with_arrivals(Arrivals::Poisson { rate, seed })
                .with_batch(batch)
        };
        let facade = d
            .simulate_workloads(&[shape(d.pipeline().clone())], &cfg)
            .unwrap();
        let hand_pipeline = compile::compile(&dag, d.schedule(), &spec).unwrap();
        let hand = sim::run(&[shape(hand_pipeline)], &spec, &cfg).unwrap();
        prop_assert_eq!(&facade, &hand);
    }

    #[test]
    fn serve_is_bitwise_serve_serve(
        model_i in 0usize..3,
        stages in 2usize..=6,
        requests in 2usize..120,
        max_batch in 1usize..6,
        rate in 1.0f64..500.0,
        seed in 0u64..1 << 40,
        shed_u in 0usize..2,
    ) {
        let (_, dag) = model(model_i);
        let spec = DeviceSpec::coral();
        let d = Deployment::of(&dag)
            .stages(stages)
            .device(spec)
            .partitioner("op-balanced")
            .build()
            .unwrap();
        let cfg = ServeConfig::contended().with_completions();
        let shape = |p: respect::tpu::CompiledPipeline| {
            let t = ServeTenant::new(p, requests)
                .with_arrivals(Arrivals::Poisson { rate, seed })
                .with_batcher(BatchPolicy::new(max_batch, 2e-3));
            if shed_u == 1 {
                t.with_admission(AdmissionPolicy::SloDelay { target_s: 0.1 })
            } else {
                t
            }
        };
        let facade = d.serve(&[shape(d.pipeline().clone())], &cfg).unwrap();
        let hand_pipeline = compile::compile(&dag, d.schedule(), &spec).unwrap();
        let hand = serve(&[shape(hand_pipeline)], &spec, &cfg).unwrap();
        prop_assert_eq!(&facade, &hand);
    }
}
