//! The workspace-wide `respect::Error`: `From` conversions from every
//! subsystem error, `Display` prefixes, and `source()` chains.

use std::error::Error as StdError;

use respect::deploy::Deployment;
use respect::graph::{GraphError, NodeId};
use respect::nn::serialize::WeightIoError;
use respect::sched::registry::RegistryError;
use respect::sched::ScheduleError;
use respect::serve::ServeError;
use respect::tpu::sim::SimError;
use respect::Error;

/// Display shows a subsystem prefix plus the inner message; source()
/// exposes the inner error itself.
fn assert_wraps(err: Error, prefix: &str, inner_display: &str) {
    let msg = err.to_string();
    assert!(msg.starts_with(prefix), "{msg:?} should start {prefix:?}");
    assert!(
        msg.contains(inner_display),
        "{msg:?} missing {inner_display:?}"
    );
    let source = err.source().expect("every variant has a source");
    assert_eq!(source.to_string(), inner_display);
}

#[test]
fn every_variant_displays_and_chains_its_source() {
    let graph = GraphError::SelfLoop(NodeId(3));
    assert_wraps(graph.clone().into(), "graph error: ", &graph.to_string());

    let schedule = ScheduleError::NoStages;
    assert_wraps(
        schedule.clone().into(),
        "schedule error: ",
        &schedule.to_string(),
    );

    let registry = RegistryError::UnknownScheduler {
        name: "cplex".into(),
        available: vec!["exact".into()],
    };
    assert_wraps(
        registry.clone().into(),
        "scheduler registry error: ",
        &registry.to_string(),
    );

    let weight_io = WeightIoError::Format("truncated header".into());
    let weight_io_display = weight_io.to_string();
    assert_wraps(weight_io.into(), "weight i/o error: ", &weight_io_display);

    let sim = SimError::NoRequests;
    assert_wraps(sim.clone().into(), "simulation error: ", &sim.to_string());

    let serve = ServeError::NoTenants;
    assert_wraps(serve.clone().into(), "serving error: ", &serve.to_string());
}

#[test]
fn train_errors_chain_through_to_their_schedule_cause() {
    // TrainError wraps the dataset's ScheduleError; through the unified
    // type the full chain stays walkable:
    // Error::Train -> TrainError::Dataset -> ScheduleError::NoStages
    let train: respect::core::train::TrainError = ScheduleError::NoStages.into();
    let unified: Error = train.into();
    assert!(unified.to_string().starts_with("training error: "));
    let level1 = unified.source().expect("train source");
    let level2 = level1.source().expect("schedule cause");
    assert_eq!(level2.to_string(), ScheduleError::NoStages.to_string());
}

#[test]
fn question_mark_unifies_the_whole_pipeline() {
    // One function, one error type, four subsystems.
    fn run() -> Result<f64, Error> {
        let dag = respect::graph::models::xception();
        let deployment = Deployment::of(&dag)
            .stages(4)
            .partitioner("greedy")
            .build()?;
        let report = deployment.simulate(50)?;
        let sweep = deployment.simulate_workloads(
            &[deployment.workload(20)],
            &respect::tpu::sim::SimConfig::uncontended(),
        )?;
        let served = deployment.serve(
            &[deployment.tenant(20)],
            &respect::serve::ServeConfig::default(),
        )?;
        Ok(report.throughput_ips
            + sweep.tenants[0].throughput_ips
            + served.tenants[0].throughput_ips)
    }
    assert!(run().unwrap() > 0.0);
}

#[test]
fn failures_surface_as_the_matching_variant() {
    let dag = respect::graph::models::xception();
    let deployment = Deployment::of(&dag).build().unwrap();

    let err = Deployment::of(&dag).stages(0).build().unwrap_err();
    assert!(matches!(err, Error::Schedule(ScheduleError::NoStages)));

    let err = deployment.simulate(0).unwrap_err();
    assert!(matches!(err, Error::Sim(SimError::NoRequests)));

    let err = deployment
        .simulate_workloads(&[], &respect::tpu::sim::SimConfig::uncontended())
        .unwrap_err();
    assert!(matches!(err, Error::Sim(SimError::NoWorkloads)));

    let err = deployment
        .serve(&[], &respect::serve::ServeConfig::default())
        .unwrap_err();
    assert!(matches!(err, Error::Serve(ServeError::NoTenants)));
}
