//! Scheduler-registry coverage: every name resolves, schedules validly,
//! reproduces per seed, and unknown names fail with a structured error.

use std::time::Duration;

use respect::deploy::{self, Deployment};
use respect::graph::{models, SyntheticConfig, SyntheticSampler};
use respect::sched::registry::{self, BuildOptions, Registry, RegistryError};
use respect::tpu::device::DeviceSpec;

fn options() -> BuildOptions {
    BuildOptions::default()
        .with_cost_model(DeviceSpec::coral().cost_model())
        .with_iterations(300)
        .with_time_budget(Duration::from_secs(5))
}

/// A graph small enough for the exhaustive `brute` entry.
fn tiny_dag() -> respect::graph::Dag {
    let cfg = SyntheticConfig {
        num_nodes: 9,
        ..SyntheticConfig::default()
    };
    SyntheticSampler::new(cfg, 0xcafe).sample()
}

#[test]
fn builtin_registry_lists_at_least_nine_names() {
    let names = registry::names();
    assert!(names.len() >= 9, "{names:?}");
    for expected in [
        "param-balanced",
        "op-balanced",
        "greedy",
        "anneal",
        "ilp",
        "exact",
        "brute",
        "hu",
        "force",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
}

#[test]
fn every_builtin_name_schedules_a_zoo_model_validly() {
    let dag = models::xception();
    let tiny = tiny_dag();
    let opts = options();
    for name in registry::names() {
        // exhaustive enumeration cannot cover a 134-node model; `brute`
        // is exercised on a graph inside its cap (and the zoo-model
        // refusal is its own test below)
        let target = if name == "brute" { &tiny } else { &dag };
        let scheduler = registry::build(&name, &opts).unwrap_or_else(|e| panic!("{e}"));
        let schedule = scheduler
            .schedule(target, 4)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(schedule.is_valid(target), "{name}");
        assert_eq!(schedule.num_stages(), 4, "{name}");
        assert!(!scheduler.name().is_empty(), "{name}");
    }
}

#[test]
fn every_builtin_name_is_deterministic_per_seed() {
    let dag = models::xception();
    let tiny = tiny_dag();
    for name in registry::names() {
        let target = if name == "brute" { &tiny } else { &dag };
        let opts = options().with_seed(0xd1ce);
        let a = registry::build(&name, &opts)
            .unwrap_or_else(|e| panic!("{e}"))
            .schedule(target, 4)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = registry::build(&name, &opts)
            .unwrap_or_else(|e| panic!("{e}"))
            .schedule(target, 4)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(a, b, "{name} must reproduce bitwise per seed");
    }
}

#[test]
fn brute_refuses_zoo_models_with_a_structured_error() {
    let dag = models::xception();
    let err = registry::build("brute", &options())
        .unwrap_or_else(|e| panic!("{e}"))
        .schedule(&dag, 4)
        .unwrap_err();
    assert!(
        matches!(err, respect::sched::ScheduleError::SolverFailed(_)),
        "{err}"
    );
}

#[test]
fn unknown_names_return_a_structured_error_not_a_panic() {
    let Err(err) = registry::build("cplex", &BuildOptions::default()) else {
        panic!("unknown name must not resolve");
    };
    match &err {
        RegistryError::UnknownScheduler { name, available } => {
            assert_eq!(name, "cplex");
            assert!(available.len() >= 9);
        }
        other => panic!("unexpected error shape: {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("cplex"), "{msg}");
    assert!(msg.contains("param-balanced"), "{msg}");

    // and through the facade, as the unified error type
    let dag = tiny_dag();
    let err = Deployment::of(&dag)
        .partitioner("cplex")
        .build()
        .unwrap_err();
    assert!(matches!(err, respect::Error::Registry(_)), "{err}");
    assert!(err.to_string().contains("cplex"), "{err}");
}

#[test]
fn deploy_registry_adds_respect_and_profiling() {
    let spec = DeviceSpec::coral();
    let names = deploy::registry_names();
    assert!(names.len() >= 11, "{names:?}");
    assert!(names.iter().any(|n| n == "respect"), "{names:?}");
    assert!(names.iter().any(|n| n == "profiling"), "{names:?}");

    let dag = models::xception();
    let s = deploy::registry(&spec)
        .build("profiling", &options())
        .unwrap_or_else(|e| panic!("{e}"))
        .schedule(&dag, 4)
        .unwrap();
    assert!(s.is_valid(&dag));
}

#[test]
fn respect_entry_schedules_by_name_end_to_end() {
    // trains the process-cached smoke policy on first use (seconds)
    let dag = models::xception();
    let deployment = Deployment::of(&dag)
        .stages(4)
        .partitioner("respect")
        .build()
        .unwrap();
    assert!(deployment.schedule().is_valid(&dag));
    assert_eq!(deployment.scheduler_name(), "RESPECT");
    // the cached policy makes repeat deployments bitwise-identical
    let again = Deployment::of(&dag)
        .stages(4)
        .partitioner("respect")
        .build()
        .unwrap();
    assert_eq!(deployment.schedule(), again.schedule());
}

#[test]
fn custom_entries_extend_the_registry() {
    let mut r = Registry::builtin();
    r.register("my-balanced", |_| {
        Box::new(respect::sched::balanced::OpBalanced::new())
    });
    assert!(r.contains("my-balanced"));
    let dag = tiny_dag();
    let s = r
        .build("my-balanced", &BuildOptions::default())
        .unwrap_or_else(|e| panic!("{e}"))
        .schedule(&dag, 3)
        .unwrap();
    assert!(s.is_valid(&dag));
}
