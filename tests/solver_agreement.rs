//! Cross-crate solver agreement: brute force, the structured exact
//! solver, the generic ILP-style solver, and the packing DP must be
//! mutually consistent on graphs small enough to enumerate.

use respect::graph::{SyntheticConfig, SyntheticSampler};
use respect::sched::registry::{self, BuildOptions};
use respect::sched::{
    anneal, balanced, brute, exact, greedy, ilp, pack, repair, CostModel, Scheduler,
};

fn small_dag(seed: u64, nodes: usize) -> respect::graph::Dag {
    let cfg = SyntheticConfig {
        num_nodes: nodes,
        max_in_degree: 3,
        param_bytes_range: (1, 128),
        output_bytes_range: (1, 32),
        ..SyntheticConfig::default()
    };
    SyntheticSampler::new(cfg, seed).sample()
}

#[test]
fn all_exact_methods_agree_with_brute_force() {
    let model = CostModel {
        sec_per_mac: 1e-3,
        sec_per_byte: 1.0,
        cache_bytes: 16,
    };
    for seed in 0..4 {
        let dag = small_dag(seed, 9);
        for stages in [2usize, 3] {
            let want = brute::optimal_objective(&dag, stages, &model);
            let a = exact::ExactScheduler::new(model)
                .solve(&dag, stages)
                .unwrap();
            let b = ilp::IlpScheduler::new(model).solve(&dag, stages).unwrap();
            assert!(a.proven_optimal && b.proven_optimal);
            for (label, got) in [("exact", a.objective), ("ilp", b.objective)] {
                assert!(
                    (got - want).abs() <= 1e-9 * want.max(1e-12),
                    "seed {seed} k={stages} {label}: {got} vs brute {want}"
                );
            }
        }
    }
}

#[test]
fn heuristics_are_bounded_below_by_the_optimum() {
    let model = CostModel::coral();
    for seed in 10..13 {
        let dag = small_dag(seed, 10);
        let stages = 3;
        let optimum = exact::ExactScheduler::new(model)
            .solve(&dag, stages)
            .unwrap()
            .objective;
        let heuristics: Vec<Box<dyn Scheduler>> = vec![
            Box::new(balanced::OpBalanced::new()),
            Box::new(balanced::ParamBalanced::new()),
            Box::new(greedy::GreedyCost::new(model)),
            Box::new(anneal::Annealing::new(model).with_iterations(500)),
        ];
        for h in &heuristics {
            let s = h.schedule(&dag, stages).unwrap();
            assert!(s.is_valid(&dag));
            let obj = model.objective(&dag, &s);
            assert!(
                obj >= optimum - 1e-12,
                "{} beat the optimum: {obj} < {optimum}",
                h.name()
            );
        }
    }
}

#[test]
fn every_registry_scheduler_is_bounded_below_by_the_optimum() {
    // the registry's trait adapters (hu, force, brute, ...) must be
    // sound: never below the exhaustive optimum, and brute must hit it.
    let model = CostModel::coral();
    let opts = BuildOptions::default()
        .with_cost_model(model)
        .with_iterations(300);
    for seed in 30..32 {
        let dag = small_dag(seed, 9);
        let stages = 3;
        let optimum = brute::optimal_objective(&dag, stages, &model);
        for name in registry::names() {
            let s = registry::build(&name, &opts)
                .unwrap_or_else(|e| panic!("{e}"))
                .schedule(&dag, stages)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(s.is_valid(&dag), "{name}");
            let obj = model.objective(&dag, &s);
            assert!(
                obj >= optimum - 1e-12,
                "{name} beat the optimum: {obj} < {optimum}"
            );
            if name == "brute" || name == "exact" || name == "ilp" {
                assert!(
                    (obj - optimum).abs() <= 1e-9 * optimum.max(1e-12),
                    "{name} must be optimal: {obj} vs {optimum}"
                );
            }
        }
    }
}

#[test]
fn packing_any_topological_order_is_feasible_and_repair_is_noop() {
    let model = CostModel::coral();
    let dag = small_dag(20, 12);
    let order = respect::graph::topo::topo_order(&dag);
    let (schedule, obj) = pack::pack(&dag, &order, 4, &model);
    assert!(schedule.is_valid(&dag));
    assert!(obj.is_finite());
    // post-inference processing on an already-valid schedule (without the
    // sibling rule) must change nothing
    let cfg = repair::RepairConfig {
        sibling_stages: false,
        ..repair::RepairConfig::default()
    };
    let repaired = repair::repair(&dag, schedule.stage_of(), 4, cfg).unwrap();
    assert_eq!(repaired.stage_of(), schedule.stage_of());
}
