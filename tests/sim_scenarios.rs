//! Scenario-level integration tests of the discrete-event simulator:
//! multi-tenant co-residency on a shared device chain and USB bus,
//! open-loop arrival sweeps, and batched streams — the workloads the
//! legacy closed-form recurrence could not express.

use respect::graph::models;
use respect::sched::{balanced::ParamBalanced, Scheduler};
use respect::tpu::sim::{self, Arrivals, SimConfig, Workload};
use respect::tpu::{compile, device::DeviceSpec, CompiledPipeline};

fn compiled(dag: &respect::graph::Dag, stages: usize, spec: &DeviceSpec) -> CompiledPipeline {
    let s = ParamBalanced::new().schedule(dag, stages).unwrap();
    compile::compile(dag, &s, spec).unwrap()
}

/// Two models co-resident on one 4-TPU chain with a shared bus must each
/// run measurably slower than they do alone — the acceptance criterion
/// of the simulator issue.
#[test]
fn co_residency_degrades_per_tenant_throughput() {
    let spec = DeviceSpec::coral();
    // Heavy spillers: both stream parameters over the shared bus every
    // inference, so contention is structural, not incidental.
    let a = compiled(&models::resnet152(), 4, &spec);
    let b = compiled(&models::resnet101(), 4, &spec);
    let cfg = SimConfig::contended();
    let n = 300;

    let solo = |p: &CompiledPipeline| {
        sim::run(&[Workload::closed_loop(p.clone(), n)], &spec, &cfg)
            .unwrap()
            .tenants[0]
            .throughput_ips
    };
    let solo_a = solo(&a);
    let solo_b = solo(&b);

    let shared = sim::run(
        &[Workload::closed_loop(a, n), Workload::closed_loop(b, n)],
        &spec,
        &cfg,
    )
    .unwrap();
    let shared_a = shared.tenants[0].throughput_ips;
    let shared_b = shared.tenants[1].throughput_ips;

    assert!(
        shared_a < 0.95 * solo_a,
        "tenant A: shared {shared_a} not measurably below solo {solo_a}"
    );
    assert!(
        shared_b < 0.95 * solo_b,
        "tenant B: shared {shared_b} not measurably below solo {solo_b}"
    );
    // Sharing is coupled by FIFO head-of-line blocking on the bus (the
    // heavy spiller's long transfers pace everyone), so the aggregate
    // does NOT exceed either solo rate here — but it must still beat
    // dedicating the whole system to the slower tenant.
    assert!(
        shared_a + shared_b > solo_a.min(solo_b),
        "aggregate {} fell below the slower solo {}",
        shared_a + shared_b,
        solo_a.min(solo_b)
    );
}

/// Under light open-loop load the system is arrival-bound: achieved
/// throughput tracks the offered rate and latency stays at the service
/// floor. Past saturation it is service-bound: throughput pins at the
/// closed-loop capacity and latency grows.
#[test]
fn open_loop_rates_sweep_from_idle_to_saturation() {
    let spec = DeviceSpec::coral();
    let p = compiled(&models::resnet50(), 4, &spec);
    let cfg = SimConfig::contended();
    let n = 400;

    let capacity = sim::run(&[Workload::closed_loop(p.clone(), n)], &spec, &cfg)
        .unwrap()
        .tenants[0]
        .throughput_ips;

    // 30% load: arrival-bound
    let light_rate = 0.3 * capacity;
    let light = sim::run(
        &[Workload::new(p.clone(), n).with_arrivals(Arrivals::Periodic { rate: light_rate })],
        &spec,
        &cfg,
    )
    .unwrap();
    let t = &light.tenants[0];
    assert!(
        (t.throughput_ips - light_rate).abs() / light_rate < 0.05,
        "light load: achieved {} vs offered {light_rate}",
        t.throughput_ips
    );

    // 3x overload: service-bound, throughput pinned at capacity
    let heavy = sim::run(
        &[Workload::new(p.clone(), n)
            .with_arrivals(Arrivals::Poisson {
                rate: 3.0 * capacity,
                seed: 11,
            })
            .with_warmup(n / 10)],
        &spec,
        &cfg,
    )
    .unwrap();
    let h = &heavy.tenants[0];
    assert!(
        (h.throughput_ips - capacity).abs() / capacity < 0.05,
        "overload: achieved {} vs capacity {capacity}",
        h.throughput_ips
    );
    assert!(
        h.mean_latency_s > 3.0 * t.mean_latency_s,
        "overload latency {} should dwarf light-load latency {}",
        h.mean_latency_s,
        t.mean_latency_s
    );
}

/// Batched streams amortize host dispatch and USB submission overheads:
/// steady-state throughput grows monotonically in batch size on an
/// overhead-sensitive pipeline.
#[test]
fn batching_monotonically_amortizes_overheads() {
    let spec = DeviceSpec::coral();
    // many stages -> short per-stage work -> fixed overheads dominate
    let p = compiled(&models::resnet50(), 6, &spec);
    let cfg = SimConfig::contended();
    let inferences = 960;
    let mut last = 0.0;
    for batch in [1usize, 4, 16] {
        let requests = inferences / batch;
        let r = sim::run(
            &[Workload::closed_loop(p.clone(), requests)
                .with_batch(batch)
                .with_warmup(requests / 8)],
            &spec,
            &cfg,
        )
        .unwrap();
        let ips = r.tenants[0].throughput_ips;
        assert!(ips > last, "batch {batch}: {ips} did not improve on {last}");
        last = ips;
    }
}

/// A lighter co-tenant steals less bus than a heavy one: degradation is
/// graded, not all-or-nothing.
#[test]
fn contention_scales_with_co_tenant_weight() {
    let spec = DeviceSpec::coral();
    let victim = compiled(&models::resnet152(), 4, &spec);
    let light = compiled(&models::xception(), 4, &spec); // fits cache: little streaming
    let heavy = compiled(&models::resnet152v2(), 4, &spec); // heavy spiller
    let cfg = SimConfig::contended();
    let n = 250;

    let victim_with = |other: &CompiledPipeline| {
        sim::run(
            &[
                Workload::closed_loop(victim.clone(), n),
                Workload::closed_loop(other.clone(), n),
            ],
            &spec,
            &cfg,
        )
        .unwrap()
        .tenants[0]
            .throughput_ips
    };
    let with_light = victim_with(&light);
    let with_heavy = victim_with(&heavy);
    assert!(
        with_heavy < with_light,
        "heavy co-tenant ({with_heavy}) should hurt more than light ({with_light})"
    );
}

/// The engine accepts tenants of different pipeline depths on one chain:
/// a 2-stage model shares devices 0-1 with a 4-stage model's front half.
#[test]
fn mixed_depth_tenants_share_the_chain_prefix() {
    let spec = DeviceSpec::coral();
    let deep = compiled(&models::resnet101(), 4, &spec);
    let shallow = compiled(&models::xception(), 2, &spec);
    let r = sim::run(
        &[
            Workload::closed_loop(deep, 120),
            Workload::closed_loop(shallow, 120),
        ],
        &spec,
        &SimConfig::contended().with_trace(),
    )
    .unwrap();
    assert_eq!(r.tenants[0].inferences, 120);
    assert_eq!(r.tenants[1].inferences, 120);
    // the shallow tenant never touches devices 2..4
    use respect::tpu::sim::ResourceId;
    assert!(r.trace.iter().filter(|s| s.tenant == 1).all(|s| matches!(
        s.resource,
        ResourceId::Bus | ResourceId::Device(0) | ResourceId::Device(1)
    )));
}
