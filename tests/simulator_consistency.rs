//! Cost model vs simulator consistency: the abstract objective must
//! predict the simulator's ranking in the regimes where the paper's
//! method relies on it, and the documented miscorrelation must stay
//! bounded.

use respect::graph::models;
use respect::sched::{balanced, exact, Scheduler};
use respect::tpu::sim::{self, SimConfig, Workload};
use respect::tpu::{compile, device::DeviceSpec, exec};

#[test]
fn better_objective_means_better_simulated_throughput_on_heavy_models() {
    // ResNet152 at 6 stages: op-balanced cuts overload late stages with
    // weights; the exact schedule must win on the simulator too.
    let spec = DeviceSpec::coral();
    let model = spec.cost_model();
    let dag = models::resnet152();
    let stages = 6;
    let s_compiler = balanced::OpBalanced::new().schedule(&dag, stages).unwrap();
    let s_exact = exact::ExactScheduler::new(model)
        .schedule(&dag, stages)
        .unwrap();
    let obj_c = model.objective(&dag, &s_compiler);
    let obj_e = model.objective(&dag, &s_exact);
    assert!(obj_e < obj_c, "exact must dominate on the abstract model");

    let sim = |s| {
        let p = compile::compile(&dag, s, &spec).unwrap();
        exec::simulate(&p, &spec, 1_000).unwrap().throughput_ips
    };
    let ips_c = sim(&s_compiler);
    let ips_e = sim(&s_exact);
    assert!(
        ips_e > ips_c,
        "simulator must agree: exact {ips_e} vs compiler {ips_c}"
    );
}

#[test]
fn better_objective_survives_bus_contention() {
    // The abstract objective knows nothing about the shared bus, yet its
    // ranking must survive the contended simulator on heavy spillers —
    // bus pressure is itself driven by the streamed bytes the objective
    // penalizes. Checked both solo and with a co-resident tenant.
    let spec = DeviceSpec::coral();
    let model = spec.cost_model();
    let dag = models::resnet152();
    let stages = 6;
    let s_compiler = balanced::OpBalanced::new().schedule(&dag, stages).unwrap();
    let s_exact = exact::ExactScheduler::new(model)
        .schedule(&dag, stages)
        .unwrap();
    assert!(model.objective(&dag, &s_exact) < model.objective(&dag, &s_compiler));

    let contended_ips = |s: &respect::sched::Schedule, with_co_tenant: bool| {
        let p = compile::compile(&dag, s, &spec).unwrap();
        let mut workloads = vec![Workload::closed_loop(p, 400)];
        if with_co_tenant {
            let co = compile::compile(
                &models::resnet101(),
                &balanced::ParamBalanced::new()
                    .schedule(&models::resnet101(), stages)
                    .unwrap(),
                &spec,
            )
            .unwrap();
            workloads.push(Workload::closed_loop(co, 400));
        }
        sim::run(&workloads, &spec, &SimConfig::contended())
            .unwrap()
            .tenants[0]
            .throughput_ips
    };
    for with_co_tenant in [false, true] {
        let ips_c = contended_ips(&s_compiler, with_co_tenant);
        let ips_e = contended_ips(&s_exact, with_co_tenant);
        assert!(
            ips_e > ips_c,
            "contended sim (co-tenant: {with_co_tenant}) must preserve the ranking: \
             exact {ips_e} vs compiler {ips_c}"
        );
    }
}

#[test]
fn simulated_stage_times_track_cost_model_components() {
    let spec = DeviceSpec::coral();
    let model = spec.cost_model();
    let dag = models::resnet101();
    let s = balanced::OpBalanced::new().schedule(&dag, 4).unwrap();
    let costs = model.stage_costs(&dag, &s);
    let pipeline = compile::compile(&dag, &s, &spec).unwrap();
    let report = exec::simulate(&pipeline, &spec, 10).unwrap();
    // simulator adds overheads and output transfers, so service >= cost
    for (k, (&cost, &service)) in costs.iter().zip(&report.stage_service_s).enumerate() {
        assert!(
            service + 1e-12 >= cost,
            "stage {k}: sim {service} below abstract {cost}"
        );
        // but the miscorrelation is bounded: within 10x + fixed overhead
        assert!(
            service <= 10.0 * cost + 1e-2,
            "stage {k}: sim {service} wildly above abstract {cost}"
        );
    }
}

#[test]
fn pipelining_monotonically_helps_until_cache_fits() {
    // adding stages must never reduce simulated throughput for the
    // compiler heuristic on a heavy model (more cache, shorter stages)
    let spec = DeviceSpec::coral();
    let dag = models::resnet152v2();
    let mut last = 0.0;
    for stages in [1usize, 2, 4, 6] {
        let s = balanced::ParamBalanced::new()
            .schedule(&dag, stages)
            .unwrap();
        let p = compile::compile(&dag, &s, &spec).unwrap();
        let ips = exec::simulate(&p, &spec, 500).unwrap().throughput_ips;
        assert!(
            ips >= last * 0.98,
            "{stages} stages regressed: {ips} < {last}"
        );
        last = ips;
    }
}
