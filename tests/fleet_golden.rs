//! Fleet-sweep golden regression: the quick `reproduce -- fleet` sweep
//! is pinned to a checked-in golden file, so any drift in the fleet
//! layer (router, autoscaler, energy accounting), the chain engine, or
//! the simulator timing model fails loudly instead of silently shifting
//! the reported numbers.
//!
//! Every arrival process and router in the sweep is seeded (diurnal
//! thinning included), so each metric is pure IEEE-754 arithmetic over
//! the device constants and is compared **bitwise** (the
//! `serve_golden` / Table I discipline).
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! RESPECT_REGEN_GOLDEN=1 cargo test --test fleet_golden
//! git diff tests/golden/fleet_sweep.tsv   # review the drift!
//! ```

use std::fmt::Write as _;
use std::path::Path;

use respect_bench::experiments::{fleet_sweep, FleetSweepRow};

const GOLDEN_PATH: &str = "tests/golden/fleet_sweep.tsv";

fn render(rows: &[FleetSweepRow]) -> String {
    let mut out = String::from(
        "# model\tchains\trouter\tload\tadmitted\tshed\tscale\tthr_bits\tp99_bits\tenergy_bits\tthr_ips\tp99_ms\tenergy_j\n\
         # Regenerate with RESPECT_REGEN_GOLDEN=1 cargo test --test fleet_golden\n",
    );
    for r in rows {
        writeln!(
            out,
            "{}\t{}\t{}\t{:.1}\t{}\t{}\t{}\t{:016x}\t{:016x}\t{:016x}\t{:.17e}\t{:.17e}\t{:.17e}",
            r.name,
            r.chains,
            r.router,
            r.load,
            r.admitted,
            r.shed,
            r.scale_events,
            r.throughput_ips.to_bits(),
            r.p99_ms.to_bits(),
            r.energy_j.to_bits(),
            r.throughput_ips,
            r.p99_ms,
            r.energy_j,
        )
        .unwrap();
    }
    out
}

#[test]
fn fleet_sweep_matches_golden_file() {
    let rows = fleet_sweep(true);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let rendered = render(&rows);
    if std::env::var_os("RESPECT_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH} with {} rows", rows.len());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{GOLDEN_PATH} unreadable ({e}); regenerate it"));
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let (want, got) = (strip(&golden), strip(&rendered));
    assert_eq!(
        want.len(),
        got.len(),
        "golden file has {} rows, run produced {}",
        want.len(),
        got.len()
    );
    let drifted: Vec<String> = want
        .iter()
        .zip(&got)
        .filter(|(w, g)| w != g)
        .map(|(w, g)| format!("pinned: {w}\n   got: {g}"))
        .collect();
    assert!(
        drifted.is_empty(),
        "fleet sweep drift against {GOLDEN_PATH} — review and regenerate if intentional:\n{}",
        drifted.join("\n")
    );
}

#[test]
fn fleet_sweep_sanity_chains_scale_and_routers_agree_on_one_chain() {
    let rows = fleet_sweep(true);
    let find = |chains: usize, router: &str, load: f64| {
        rows.iter()
            .find(|r| {
                r.name == "DenseNet121"
                    && r.chains == chains
                    && r.router == router
                    && r.load == load
            })
            .unwrap()
    };
    // on one chain every router is the identity: identical runs
    for load in [0.8, 1.5] {
        let rr = find(1, "rr", load);
        for router in ["jsb", "p2c", "jsb+auto"] {
            let other = find(1, router, load);
            assert_eq!(other.admitted, rr.admitted);
            assert_eq!(
                other.throughput_ips.to_bits(),
                rr.throughput_ips.to_bits(),
                "{router} diverged from rr on a single chain"
            );
        }
    }
    // more chains means real horizontal scaling under overload
    let (one, four) = (find(1, "jsb", 1.5), find(4, "jsb", 1.5));
    assert!(
        four.throughput_ips > 3.0 * one.throughput_ips,
        "4-chain goodput {:.0} should be ~4x one chain's {:.0}",
        four.throughput_ips,
        one.throughput_ips
    );
    assert!(four.shed < one.shed);
    // the autoscaled variant actually scaled, and an always-on fleet
    // never records scale events
    assert!(find(4, "jsb+auto", 1.5).scale_events > 0);
    assert_eq!(find(4, "jsb", 1.5).scale_events, 0);
}
