//! Acceptance test of the fleet serving layer, end to end through the
//! `Deployment` facade:
//!
//! * under a **diurnal** open-loop load sized for the whole fleet, a
//!   single chain blows a 250 ms p99 SLO decisively while a 12-chain
//!   fleet behind join-shortest-backlog routing holds it;
//! * the fleet report is **bitwise-identical** across repeated runs
//!   with the same seed;
//! * the facade's `serve_fleet` is sugar over the hand-wired
//!   `respect_serve::fleet::serve_fleet`, bitwise.

use respect::deploy::Deployment;
use respect::graph::models;
use respect::serve::{
    serve_fleet, AutoscalePolicy, BatchPolicy, FleetConfig, RouterPolicy, ServeTenant,
};
use respect::tpu::device::DeviceSpec;
use respect::tpu::sim::Arrivals;

const SLO_P99_S: f64 = 0.250;
const FLEET_CHAINS: usize = 12;

/// DenseNet-121 on 6-stage chains with the op-count-balancing partition
/// — the same deliberately mediocre deployment the single-chain serving
/// tests stress, replicated per chain.
fn deployment(fleet: usize) -> Deployment {
    Deployment::of(&models::densenet121())
        .stages(6)
        .device(DeviceSpec::coral())
        .partitioner("op-balanced")
        .fleet(fleet)
        .router(RouterPolicy::JoinShortestBacklog)
        .build()
        .unwrap()
}

/// A diurnal request stream sized against the measured closed-loop
/// capacity of one chain: the cycle mean is several chains' worth of
/// load and the peak approaches the whole fleet's capacity.
fn diurnal_tenant(d: &Deployment, chain_cap_ips: f64, n: usize) -> ServeTenant {
    ServeTenant::new(d.pipeline().clone(), n)
        .with_arrivals(Arrivals::Diurnal {
            mean_rate: 7.0 * chain_cap_ips,
            amplitude: 0.5,
            period_s: 4.0,
            seed: 1713,
        })
        .with_warmup(n / 20)
        .with_batcher(BatchPolicy::new(8, 5e-3))
}

fn chain_capacity_ips(d: &Deployment) -> f64 {
    let closed = ServeTenant::new(d.pipeline().clone(), 1_000)
        .with_warmup(100)
        .with_batcher(BatchPolicy::new(8, 5e-3));
    d.serve_fleet(&[closed]).unwrap().tenants[0].throughput_ips
}

#[test]
fn twelve_chain_fleet_holds_a_p99_slo_one_chain_cannot() {
    let single = deployment(1);
    let cap = chain_capacity_ips(&single);
    let n = 8_000;

    // 1. one chain drowns: the diurnal mean alone is 7x its capacity
    let alone = single
        .serve_fleet(&[diurnal_tenant(&single, cap, n)])
        .unwrap();
    assert!(
        alone.p99_s() > 4.0 * SLO_P99_S,
        "single-chain p99 {:.3}s should blow the {SLO_P99_S}s SLO decisively",
        alone.p99_s()
    );

    // 2. the routed fleet holds the SLO on the same arrival stream
    let fleet = deployment(FLEET_CHAINS);
    let report = fleet
        .serve_fleet(&[diurnal_tenant(&fleet, cap, n)])
        .unwrap();
    assert!(
        report.p99_s() <= SLO_P99_S,
        "fleet p99 {:.3}s must hold the {SLO_P99_S}s SLO",
        report.p99_s()
    );
    assert_eq!(report.shed(), 0, "open admission: nothing may be shed");
    assert_eq!(report.admitted(), n);
    assert_eq!(report.chains.len(), FLEET_CHAINS);
    // join-shortest-backlog actually spreads the load: every chain
    // served a meaningful share
    for (c, ch) in report.chains.iter().enumerate() {
        assert!(
            ch.admitted > n / (4 * FLEET_CHAINS),
            "chain {c} admitted only {} of {n}",
            ch.admitted
        );
    }
    // the merged fleet histogram is exactly the per-tenant evidence
    assert_eq!(
        report.histogram.count(),
        report.tenants[0].histogram.count()
    );
    // energy accounting covers the whole fleet for the whole makespan
    assert!(report.total_energy_j() > 0.0);
    for ch in &report.chains {
        assert_eq!(ch.powered_s.to_bits(), report.makespan_s.to_bits());
    }

    // 3. bitwise determinism of the full fleet configuration
    let again = fleet
        .serve_fleet(&[diurnal_tenant(&fleet, cap, n)])
        .unwrap();
    assert_eq!(again, report, "same seed, same fleet report");
}

#[test]
fn facade_serve_fleet_is_bitwise_the_hand_wired_fleet_call() {
    let d = deployment(4);
    let cap = chain_capacity_ips(&deployment(1));
    let tenant = diurnal_tenant(&d, cap, 600);
    let facade = d.serve_fleet(std::slice::from_ref(&tenant)).unwrap();
    let hand_cfg = FleetConfig::homogeneous(4, DeviceSpec::coral())
        .with_router(RouterPolicy::JoinShortestBacklog);
    assert_eq!(d.fleet_config(), &hand_cfg);
    let hand = serve_fleet(std::slice::from_ref(&tenant), &hand_cfg).unwrap();
    assert_eq!(facade, hand);
}

#[test]
fn autoscaled_fleet_powers_chains_with_the_diurnal_wave() {
    // With autoscaling the fleet starts at a 2-chain floor, grows
    // through the diurnal peaks, and the energy ledger reflects it:
    // total powered time stays strictly under chains x makespan.
    let d = Deployment::of(&models::densenet121())
        .stages(6)
        .device(DeviceSpec::coral())
        .partitioner("op-balanced")
        .fleet(FLEET_CHAINS)
        .router(RouterPolicy::JoinShortestBacklog)
        .autoscale(
            AutoscalePolicy::new()
                .with_min_chains(2)
                .with_scale_up_s(0.040)
                .with_scale_down_s(0.004)
                .with_check_jobs(16),
        )
        .build()
        .unwrap();
    let cap = chain_capacity_ips(&deployment(1));
    let report = d.serve_fleet(&[diurnal_tenant(&d, cap, 4_000)]).unwrap();
    assert!(
        !report.scale_events.is_empty(),
        "diurnal swings must move the autoscaler"
    );
    assert!(report.scale_events.iter().any(|e| e.to > e.from));
    let powered: f64 = report.chains.iter().map(|c| c.powered_s).sum();
    assert!(
        powered < 0.95 * FLEET_CHAINS as f64 * report.makespan_s,
        "autoscaling must leave real unpowered capacity: {powered:.3}s \
         of {:.3}s",
        FLEET_CHAINS as f64 * report.makespan_s
    );
    // the always-on prefix is powered for the exact makespan
    assert_eq!(
        report.chains[0].powered_s.to_bits(),
        report.makespan_s.to_bits()
    );
    assert_eq!(
        report.chains[1].powered_s.to_bits(),
        report.makespan_s.to_bits()
    );
}
