//! Determinism regression: training is a pure function of its config.
//!
//! Future parallelism work (batched rollouts, async data generation,
//! multi-threaded training) must not silently change results for a fixed
//! seed. Two independent trainings with the same `TrainConfig` must
//! produce byte-identical parameters and, downstream, identical schedules
//! on a fixed synthetic DAG.

use respect::core::{train_policy, RespectScheduler, TrainConfig};
use respect::graph::{SyntheticConfig, SyntheticSampler};
use respect::sched::Scheduler as _;

#[test]
fn same_seed_trains_identical_policies_and_schedules() {
    let cfg = TrainConfig::smoke_test();
    let a = train_policy(&cfg).expect("first training run");
    let b = train_policy(&cfg).expect("second training run");
    assert_eq!(
        a.params(),
        b.params(),
        "same config + seed must yield identical weights"
    );

    let dag = SyntheticSampler::new(SyntheticConfig::paper(4), 0xD5EED).sample();
    let sched_a = RespectScheduler::new(a);
    let sched_b = RespectScheduler::new(b);
    for stages in [2usize, 4] {
        let s_a = sched_a.schedule(&dag, stages).expect("schedule a");
        let s_b = sched_b.schedule(&dag, stages).expect("schedule b");
        assert_eq!(s_a, s_b, "{stages}-stage schedules diverged");
    }
}

#[test]
fn different_seeds_are_actually_different() {
    // guards against the trap where determinism holds because the seed is
    // ignored entirely
    let cfg_a = TrainConfig::smoke_test();
    let mut cfg_b = TrainConfig::smoke_test();
    cfg_b.seed = cfg_a.seed.wrapping_add(1);
    let a = train_policy(&cfg_a).expect("training a");
    let b = train_policy(&cfg_b).expect("training b");
    assert_ne!(
        a.params(),
        b.params(),
        "changing the seed must change the trained weights"
    );
}
