//! End-to-end integration: synthetic training -> real-model scheduling ->
//! simulation, spanning all five crates through the facade's unified
//! `Deployment` API.

use respect::core::{model_io, train_policy, RespectScheduler, TrainConfig};
use respect::deploy::Deployment;
use respect::graph::{models, SyntheticConfig, SyntheticSampler};
use respect::sched::Scheduler as _;
use respect::tpu::{device::DeviceSpec, energy};

fn quick_policy() -> respect::core::PtrNetPolicy {
    let mut cfg = TrainConfig::smoke_test();
    cfg.dataset.graphs = 6;
    train_policy(&cfg).expect("smoke training")
}

#[test]
fn train_schedule_simulate_roundtrip() -> Result<(), respect::Error> {
    let policy = quick_policy();
    let dag = models::xception();
    let spec = DeviceSpec::coral();
    for stages in [4usize, 6] {
        let deployment = Deployment::of(&dag)
            .stages(stages)
            .device(spec)
            .scheduler(Box::new(RespectScheduler::new(policy.clone())))
            .build()?;
        assert!(deployment.schedule().is_valid(&dag));
        let report = deployment.simulate(100)?;
        assert!(report.throughput_ips > 0.0);
        let joules = energy::estimate(deployment.pipeline(), deployment.device(), &report);
        assert!(joules.per_inference_j > 0.0);
    }
    Ok(())
}

#[test]
fn policy_survives_disk_roundtrip_through_facade() {
    let policy = quick_policy();
    let dir = std::env::temp_dir().join("respect_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.rspp");
    model_io::save_policy(&path, &policy).unwrap();
    let restored = model_io::load_policy(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let dag = SyntheticSampler::new(SyntheticConfig::paper(3), 77).sample();
    let a = RespectScheduler::new(policy).schedule(&dag, 4).unwrap();
    let b = RespectScheduler::new(restored).schedule(&dag, 4).unwrap();
    assert_eq!(a, b, "restored policy must schedule identically");
}

#[test]
fn generalizes_from_synthetic_training_to_every_table1_model() {
    // the paper's generalizability claim, end to end: trained only on
    // synthetic graphs, the policy must produce valid schedules for all
    // ten real models without retraining.
    let policy = quick_policy();
    for (name, dag) in models::table1() {
        let deployment = Deployment::of(&dag)
            .stages(4)
            .scheduler(Box::new(RespectScheduler::new(policy.clone())))
            .build()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(deployment.schedule().is_valid(&dag), "{name}");
        // the assignment is total and every stage index is in range
        assert_eq!(deployment.schedule().stage_of().len(), dag.len(), "{name}");
    }
}
