//! Table I golden regression: the abstract objective of every
//! (model, scheduler, stage-count) cell is pinned to a checked-in golden
//! file, so any drift in the cost model, the model zoo, or a scheduler's
//! output fails loudly instead of silently shifting the paper numbers.
//!
//! The objective is pure IEEE-754 arithmetic (mul/add/max) over a
//! discrete schedule, so the pinned values are compared **bitwise**.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! RESPECT_REGEN_GOLDEN=1 cargo test --test table1_golden
//! git diff tests/golden/table1_objectives.tsv   # review the drift!
//! ```

use std::fmt::Write as _;
use std::path::Path;

use respect::graph::models;
use respect::sched::{
    balanced::ParamBalanced, exact::ExactScheduler, greedy::GreedyCost, Scheduler,
};
use respect::tpu::DeviceSpec;

const GOLDEN_PATH: &str = "tests/golden/table1_objectives.tsv";
const STAGE_COUNTS: [usize; 3] = [4, 5, 6];

fn schedulers() -> Vec<(&'static str, Box<dyn Scheduler>)> {
    let model = DeviceSpec::coral().cost_model();
    vec![
        ("balanced", Box::new(ParamBalanced::new())),
        ("greedy", Box::new(GreedyCost::new(model))),
        // un-budgeted exact: provably optimal, hence deterministic
        ("exact", Box::new(ExactScheduler::new(model))),
    ]
}

fn compute_rows() -> Vec<(String, f64)> {
    let model = DeviceSpec::coral().cost_model();
    let mut rows = Vec::new();
    for (name, dag) in models::table1() {
        for (sched_name, scheduler) in schedulers() {
            for stages in STAGE_COUNTS {
                let s = scheduler
                    .schedule(&dag, stages)
                    .unwrap_or_else(|e| panic!("{sched_name} on {name}@{stages}: {e}"));
                let obj = model.objective(&dag, &s);
                rows.push((format!("{name}\t{sched_name}\t{stages}"), obj));
            }
        }
    }
    rows
}

fn render(rows: &[(String, f64)]) -> String {
    let mut out = String::from(
        "# model\tscheduler\tstages\tobjective_bits\tobjective_s\n\
         # Regenerate with RESPECT_REGEN_GOLDEN=1 cargo test --test table1_golden\n",
    );
    for (key, obj) in rows {
        writeln!(out, "{key}\t{:016x}\t{obj:.17e}", obj.to_bits()).unwrap();
    }
    out
}

#[test]
fn objectives_match_golden_file() {
    let rows = compute_rows();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("RESPECT_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, render(&rows)).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH} with {} rows", rows.len());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{GOLDEN_PATH} unreadable ({e}); regenerate it"));
    let mut pinned = std::collections::BTreeMap::new();
    for line in golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
    {
        let mut parts = line.rsplitn(3, '\t');
        let _decimal = parts.next().expect("decimal column");
        let bits = parts.next().expect("bits column");
        let key = parts.next().expect("key columns").to_string();
        let bits = u64::from_str_radix(bits, 16).expect("hex objective bits");
        pinned.insert(key, f64::from_bits(bits));
    }
    assert_eq!(
        pinned.len(),
        rows.len(),
        "golden file has {} rows, run produced {}",
        pinned.len(),
        rows.len()
    );
    let mut drifted = Vec::new();
    for (key, obj) in &rows {
        match pinned.get(key) {
            None => drifted.push(format!("{key}: missing from golden file")),
            Some(want) if want.to_bits() != obj.to_bits() => drifted.push(format!(
                "{key}: pinned {want:.17e} but computed {obj:.17e} (rel diff {:.2e})",
                (obj - want).abs() / want.abs().max(f64::MIN_POSITIVE)
            )),
            Some(_) => {}
        }
    }
    assert!(
        drifted.is_empty(),
        "objective drift against {GOLDEN_PATH} — review and regenerate if intentional:\n{}",
        drifted.join("\n")
    );
}

#[test]
fn golden_sanity_exact_dominates_heuristics() {
    // independent of the pinned values: exact must be the best column of
    // every (model, stages) pair it appears in
    let rows = compute_rows();
    let lookup = |model: &str, sched: &str, stages: usize| {
        rows.iter()
            .find(|(k, _)| k == &format!("{model}\t{sched}\t{stages}"))
            .map(|&(_, v)| v)
            .unwrap()
    };
    for (name, _) in models::table1() {
        for stages in STAGE_COUNTS {
            let exact = lookup(name, "exact", stages);
            for sched in ["balanced", "greedy"] {
                let h = lookup(name, sched, stages);
                assert!(
                    exact <= h + 1e-15,
                    "{name}@{stages}: exact {exact} worse than {sched} {h}"
                );
            }
        }
    }
}
