//! Metrics-snapshot golden regression: the full Prometheus-style text
//! exposition of a [`respect::obs::MetricsRecorder`] attached to one
//! Table-I serving scenario is pinned byte-for-byte.
//!
//! Everything in the exposition is deterministic — counters are folds
//! over the (ordered) probe stream, gauges are IEEE-754 arithmetic
//! rendered with Rust's shortest-roundtrip `Display` — so any drift in
//! the engine's event sequence, the probe emission points, or the
//! exposition format fails loudly here.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! RESPECT_REGEN_GOLDEN=1 cargo test --test metrics_golden
//! git diff tests/golden/metrics_snapshot.txt   # review the drift!
//! ```

use std::path::Path;

use respect::deploy::Deployment;
use respect::graph::models;
use respect::serve::{AdmissionPolicy, BatchPolicy, RouterPolicy};
use respect::tpu::sim::Arrivals;

const GOLDEN_PATH: &str = "tests/golden/metrics_snapshot.txt";

/// ResNet-50 (a Table-I model) on a 2-chain fleet: Poisson overload
/// against a queue bound, with dynamic batching — every admission,
/// batching, routing, and span counter is exercised.
fn run_exposition() -> String {
    let dag = models::resnet50();
    let deployment = Deployment::of(&dag)
        .stages(4)
        .partitioner("param-balanced")
        .fleet(2)
        .router(RouterPolicy::JoinShortestBacklog)
        .build()
        .expect("deployment builds");
    let tenant = deployment
        .tenant(400)
        .with_arrivals(Arrivals::Poisson {
            rate: 1_200.0,
            seed: 7,
        })
        .with_batcher(BatchPolicy::new(4, 2e-3))
        .with_admission(AdmissionPolicy::QueueBound { max_waiting: 16 });
    let (report, snap) = deployment
        .serve_fleet_with_metrics(&[tenant])
        .expect("fleet run succeeds");
    // the snapshot agrees with the report before we pin it
    assert_eq!(snap.counter("arrivals"), Some(report.offered() as u64));
    assert_eq!(snap.counter("admitted"), Some(report.admitted() as u64));
    assert_eq!(snap.counter("shed"), Some(report.shed() as u64));
    snap.to_prometheus()
}

#[test]
fn exposition_matches_golden_file() {
    let got = run_exposition();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("RESPECT_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH} ({} lines)", got.lines().count());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{GOLDEN_PATH} unreadable ({e}); regenerate it"));
    assert_eq!(
        got, golden,
        "metrics exposition drift against {GOLDEN_PATH} — review and \
         regenerate with RESPECT_REGEN_GOLDEN=1 if intentional"
    );
}

#[test]
fn exposition_is_deterministic_across_runs() {
    assert_eq!(run_exposition(), run_exposition());
}
