//! Five existing Rust scenario tests re-expressed in the `.scn` DSL,
//! with the original hand-wired Rust form kept as the oracle: each port
//! runs both, requires the engine reports to agree **bitwise**, and
//! re-checks the original test's qualitative claim through the DSL's
//! own assertions.
//!
//! Originals: `tests/sim_scenarios.rs` (open-loop sweep, batching,
//! co-residency) and `tests/fleet_slo.rs` (autoscaled diurnal fleet).
//! Multi-model co-residency is out of the DSL's vocabulary (a scenario
//! deploys one model), so the co-residency port pairs two tenants of
//! the same model.

use respect::deploy::Deployment;
use respect::graph::models;
use respect::sched::{balanced::ParamBalanced, Scheduler};
use respect::serve::{AutoscalePolicy, BatchPolicy, RouterPolicy, ServeTenant};
use respect::tpu::sim::{self, Arrivals, SimConfig, Workload};
use respect::tpu::{compile, device::DeviceSpec, CompiledPipeline};
use respect_scn::{run_source, RunOutput};

fn compiled(dag: &respect::graph::Dag, stages: usize, spec: &DeviceSpec) -> CompiledPipeline {
    let s = ParamBalanced::new().schedule(dag, stages).unwrap();
    compile::compile(dag, &s, spec).unwrap()
}

/// Runs a `.scn` source whose assertions must all hold, and returns its
/// sim report.
fn run_sim_scn(src: &str) -> respect::tpu::sim::SimReport {
    let run = run_source(src).expect("scenario must parse and execute");
    assert!(
        run.passed(),
        "scn assertions failed:\n{:#?}",
        run.failures().collect::<Vec<_>>()
    );
    match run.output {
        RunOutput::Sim(r) => r,
        other => panic!("expected a sim report, got {other:?}"),
    }
}

/// Port of `open_loop_rates_sweep_from_idle_to_saturation`, light half:
/// at 30% load the system is arrival-bound — achieved throughput tracks
/// the offered rate within 5%.
#[test]
fn port_open_loop_light_load_is_arrival_bound() {
    let spec = DeviceSpec::coral();
    let p = compiled(&models::resnet50(), 4, &spec);
    let cfg = SimConfig::contended();
    let n = 400;

    let capacity = sim::run(&[Workload::closed_loop(p.clone(), n)], &spec, &cfg)
        .unwrap()
        .tenants[0]
        .throughput_ips;
    let light_rate = 0.3 * capacity;

    // Rust oracle — verbatim from the original test.
    let oracle = sim::run(
        &[Workload::new(p, n).with_arrivals(Arrivals::Periodic { rate: light_rate })],
        &spec,
        &cfg,
    )
    .unwrap();
    let t = &oracle.tenants[0];
    assert!((t.throughput_ips - light_rate).abs() / light_rate < 0.05);

    // The same scenario as data, asserting the same bound in-DSL.
    let scn = run_sim_scn(&format!(
        "scenario port-open-loop-light\n\
         model resnet50\n\
         stages 4\n\
         scheduler param-balanced\n\
         bus contended\n\
         tenant\n\
         requests {n}\n\
         arrivals periodic rate={light_rate}\n\
         run sim\n\
         assert tenant0.throughput > {}\n\
         assert tenant0.throughput < {}\n",
        0.95 * light_rate,
        1.05 * light_rate,
    ));
    assert_eq!(scn, oracle, "scn run must be bitwise the oracle run");
}

/// Port of `open_loop_rates_sweep_from_idle_to_saturation`, overload
/// half: at 3x capacity the system is service-bound — throughput pins
/// at the closed-loop capacity.
#[test]
fn port_open_loop_overload_is_service_bound() {
    let spec = DeviceSpec::coral();
    let p = compiled(&models::resnet50(), 4, &spec);
    let cfg = SimConfig::contended();
    let n = 400;

    let capacity = sim::run(&[Workload::closed_loop(p.clone(), n)], &spec, &cfg)
        .unwrap()
        .tenants[0]
        .throughput_ips;

    let oracle = sim::run(
        &[Workload::new(p, n)
            .with_arrivals(Arrivals::Poisson {
                rate: 3.0 * capacity,
                seed: 11,
            })
            .with_warmup(n / 10)],
        &spec,
        &cfg,
    )
    .unwrap();
    let h = &oracle.tenants[0];
    assert!((h.throughput_ips - capacity).abs() / capacity < 0.05);

    let scn = run_sim_scn(&format!(
        "scenario port-open-loop-overload\n\
         model resnet50\n\
         stages 4\n\
         scheduler param-balanced\n\
         bus contended\n\
         tenant\n\
         requests {n}\n\
         warmup {}\n\
         arrivals poisson rate={} seed=11\n\
         run sim\n\
         assert tenant0.throughput > {}\n\
         assert tenant0.throughput < {}\n",
        n / 10,
        3.0 * capacity,
        0.95 * capacity,
        1.05 * capacity,
    ));
    assert_eq!(scn, oracle, "scn run must be bitwise the oracle run");
}

/// Port of `batching_monotonically_amortizes_overheads`: on a 6-stage
/// overhead-dominated pipeline, batch 16 beats batch 1 throughput.
#[test]
fn port_batching_amortizes_overheads() {
    let spec = DeviceSpec::coral();
    let p = compiled(&models::resnet50(), 6, &spec);
    let cfg = SimConfig::contended();
    let inferences = 960;

    let mut scn_ips = Vec::new();
    for batch in [1usize, 16] {
        let requests = inferences / batch;
        let oracle = sim::run(
            &[Workload::closed_loop(p.clone(), requests)
                .with_batch(batch)
                .with_warmup(requests / 8)],
            &spec,
            &cfg,
        )
        .unwrap();
        let scn = run_sim_scn(&format!(
            "scenario port-batching-{batch}\n\
             model resnet50\n\
             stages 6\n\
             scheduler param-balanced\n\
             bus contended\n\
             tenant\n\
             requests {requests}\n\
             batch {batch}\n\
             warmup {}\n\
             run sim\n\
             assert tenant0.inferences == {inferences}\n",
            requests / 8,
        ));
        assert_eq!(scn, oracle, "batch {batch}: scn must match the oracle");
        scn_ips.push(scn.tenants[0].throughput_ips);
    }
    assert!(
        scn_ips[1] > scn_ips[0],
        "batch 16 ({}) must beat batch 1 ({})",
        scn_ips[1],
        scn_ips[0]
    );
}

/// Port of `co_residency_degrades_per_tenant_throughput`, same-model
/// variant: two co-resident ResNet-152 tenants on one contended chain
/// each run measurably slower than one alone.
#[test]
fn port_co_residency_degrades_throughput() {
    let spec = DeviceSpec::coral();
    let p = compiled(&models::resnet152(), 4, &spec);
    let cfg = SimConfig::contended();
    let n = 200;

    let solo = sim::run(&[Workload::closed_loop(p.clone(), n)], &spec, &cfg)
        .unwrap()
        .tenants[0]
        .throughput_ips;

    let oracle = sim::run(
        &[
            Workload::closed_loop(p.clone(), n),
            Workload::closed_loop(p, n),
        ],
        &spec,
        &cfg,
    )
    .unwrap();
    assert!(oracle.tenants[0].throughput_ips < 0.95 * solo);
    assert!(oracle.tenants[1].throughput_ips < 0.95 * solo);

    let scn = run_sim_scn(&format!(
        "scenario port-co-residency\n\
         model resnet152\n\
         stages 4\n\
         scheduler param-balanced\n\
         bus contended\n\
         tenant\n\
         requests {n}\n\
         tenant\n\
         requests {n}\n\
         run sim\n\
         assert tenant0.throughput < {solo_bound}\n\
         assert tenant1.throughput < {solo_bound}\n\
         assert bus_busy > 0\n",
        solo_bound = 0.95 * solo,
    ));
    assert_eq!(scn, oracle, "scn run must be bitwise the oracle run");
}

/// Port of `autoscaled_fleet_powers_chains_with_the_diurnal_wave`
/// (scaled down): the autoscaled fleet scales up through diurnal peaks
/// and leaves real unpowered capacity, and the `.scn` fleet report is
/// bitwise the facade's.
#[test]
fn port_autoscaled_fleet_rides_the_diurnal_wave() {
    let chains = 6;
    let n = 1_500;
    let d = Deployment::of(&models::densenet121())
        .stages(6)
        .device(DeviceSpec::coral())
        .partitioner("op-balanced")
        .fleet(chains)
        .router(RouterPolicy::JoinShortestBacklog)
        .autoscale(
            AutoscalePolicy::new()
                .with_min_chains(2)
                .with_scale_up_s(0.040)
                .with_scale_down_s(0.004)
                .with_check_jobs(16),
        )
        .build()
        .unwrap();
    let cap = {
        let single = Deployment::of(&models::densenet121())
            .stages(6)
            .device(DeviceSpec::coral())
            .partitioner("op-balanced")
            .fleet(1)
            .build()
            .unwrap();
        let closed = ServeTenant::new(single.pipeline().clone(), 1_000)
            .with_warmup(100)
            .with_batcher(BatchPolicy::new(8, 5e-3));
        single.serve_fleet(&[closed]).unwrap().tenants[0].throughput_ips
    };
    let mean = 4.0 * cap;
    let tenant = ServeTenant::new(d.pipeline().clone(), n)
        .with_arrivals(Arrivals::Diurnal {
            mean_rate: mean,
            amplitude: 0.5,
            period_s: 4.0,
            seed: 1713,
        })
        .with_warmup(n / 20)
        .with_batcher(BatchPolicy::new(8, 5e-3));
    let oracle = d.serve_fleet(&[tenant]).unwrap();
    assert!(!oracle.scale_events.is_empty());
    let powered: f64 = oracle.chains.iter().map(|c| c.powered_s).sum();
    assert!(powered < 0.95 * chains as f64 * oracle.makespan_s);

    let run = run_source(&format!(
        "scenario port-autoscaled-fleet\n\
         model densenet121\n\
         stages 6\n\
         scheduler op-balanced\n\
         tenant\n\
         requests {n}\n\
         warmup {}\n\
         arrivals diurnal mean={mean} amplitude=0.5 period=4 seed=1713\n\
         batcher max_batch=8 max_delay=0.005\n\
         chains {chains}\n\
         router shortest\n\
         autoscale min=2 up=0.04 down=0.004 check=16\n\
         run fleet\n\
         assert scale_events > 0\n\
         assert chains_powered >= 2\n\
         assert chains_powered <= {chains}\n",
        n / 20,
    ))
    .expect("fleet scenario must execute");
    assert!(
        run.passed(),
        "scn assertions failed:\n{:#?}",
        run.failures().collect::<Vec<_>>()
    );
    match run.output {
        RunOutput::Fleet(r) => assert_eq!(r, oracle, "scn fleet run must be bitwise the oracle"),
        other => panic!("expected a fleet report, got {other:?}"),
    }
}
